package workload

import (
	"fmt"
	"math/rand"
)

// Sieve is the Stanford Eratosthenes sieve benchmark: it reads a limit N
// and prints the number of primes below N.
func Sieve() Workload {
	return Workload{
		Name: "c_sieve",
		Source: `
	.org 0x10000
_start:	bl readnum
	mr r13, r3          # N
	lis r14, BUF1@h
	ori r14, r14, BUF1@l
	# mark everything prime
	li r5, 1
	li r6, 0
clr:	cmpw r6, r13
	bge clrd
	stbx r5, r14, r6
	addi r6, r6, 1
	b clr
clrd:	li r15, 0           # prime count
	li r7, 2            # candidate
outer:	cmpw r7, r13
	bge done
	lbzx r8, r14, r7
	cmpwi r8, 0
	beq next
	addi r15, r15, 1
	mullw r9, r7, r7    # first composite: i*i
inner:	cmpw r9, r13
	bge next
	li r10, 0
	stbx r10, r14, r9
	add r9, r9, r7
	b inner
next:	addi r7, r7, 1
	b outer
done:	mr r3, r15
	bl putnum
	li r0, 0
	sc
` + common,
		Input: func(scale int) []byte {
			return []byte(fmt.Sprintf("%d\n", 2000*scale))
		},
		Model: func(in []byte) []byte {
			n := parseNum(in)
			if n < 3 {
				return []byte("0\n")
			}
			flags := make([]bool, n)
			count := 0
			for i := 2; i < n; i++ {
				flags[i] = true
			}
			for i := 2; i < n; i++ {
				if flags[i] {
					count++
					for j := i * i; j < n; j += i {
						flags[j] = false
					}
				}
			}
			return []byte(fmt.Sprintf("%d\n", count))
		},
	}
}

func parseNum(in []byte) int {
	n := 0
	for _, b := range in {
		if b < '0' || b > '9' {
			break
		}
		n = n*10 + int(b-'0')
	}
	return n
}

// Wc counts lines, words and characters of its input, like wc(1).
func Wc() Workload {
	return Workload{
		Name: "wc",
		Source: `
	.org 0x10000
_start:	li r13, 0           # lines
	li r14, 0           # words
	li r15, 0           # chars
	li r16, 0           # in-word flag
loop:	li r0, 2
	sc
	cmpwi r3, -1
	beq done
	addi r15, r15, 1
	cmpwi r3, 10
	bne notnl
	addi r13, r13, 1
notnl:	cmpwi r3, ' '
	beq sep
	cmpwi r3, 10
	beq sep
	cmpwi r3, 9
	beq sep
	cmpwi r16, 0
	bne loop
	li r16, 1
	addi r14, r14, 1
	b loop
sep:	li r16, 0
	b loop
done:	mr r3, r13
	bl putnum
	mr r3, r14
	bl putnum
	mr r3, r15
	bl putnum
	li r0, 0
	sc
` + common,
		Input: func(scale int) []byte { return textInput(11, 400*scale) },
		Model: func(in []byte) []byte {
			lines, words, chars := 0, 0, 0
			inWord := false
			for _, b := range in {
				chars++
				if b == '\n' {
					lines++
				}
				if b == ' ' || b == '\n' || b == '\t' {
					inWord = false
				} else if !inWord {
					inWord = true
					words++
				}
			}
			return []byte(fmt.Sprintf("%d\n%d\n%d\n", lines, words, chars))
		},
	}
}

// Cmp compares two byte streams separated by a 0x01 byte and prints the
// length of their common prefix and an equality flag.
func Cmp() Workload {
	return Workload{
		Name: "cmp",
		Source: `
	.org 0x10000
_start:	lis r13, BUF1@h
	ori r13, r13, BUF1@l
	mr r5, r13
rdA:	li r0, 2
	sc
	cmpwi r3, 1          # separator
	beq rdAd
	cmpwi r3, -1
	beq rdAd
	stb r3, 0(r5)
	addi r5, r5, 1
	b rdA
rdAd:	subf r14, r13, r5    # lenA
	lis r15, BUF2@h
	ori r15, r15, BUF2@l
	mr r3, r15
	bl readall
	mr r16, r3           # lenB
	# compare
	li r7, 0             # index
	cmpw r14, r16
	ble minA
	mr r8, r16
	b cmploop
minA:	mr r8, r14           # min length
cmploop:
	cmpw r7, r8
	bge tail
	lbzx r9, r13, r7
	lbzx r10, r15, r7
	cmpw r9, r10
	bne report
	addi r7, r7, 1
	b cmploop
tail:	# common prefix = min length; equal iff lengths match
	mr r3, r7
	bl putnum
	li r3, 1
	cmpw r14, r16
	beq eq
	li r3, 0
eq:	bl putnum
	b fin
report:	mr r3, r7
	bl putnum
	li r3, 0
	bl putnum
fin:	li r0, 0
	sc
` + common,
		Input: func(scale int) []byte {
			a := textInput(21, 150*scale)
			b := append([]byte(nil), a...)
			// Mutate one byte two thirds of the way in.
			if len(b) > 3 {
				b[len(b)*2/3] ^= 0x20
			}
			out := append(append([]byte(nil), a...), 1)
			return append(out, b...)
		},
		Model: func(in []byte) []byte {
			sep := -1
			for i, b := range in {
				if b == 1 {
					sep = i
					break
				}
			}
			var a, b []byte
			if sep < 0 {
				a = in
			} else {
				a, b = in[:sep], in[sep+1:]
			}
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for i := 0; i < n; i++ {
				if a[i] != b[i] {
					return []byte(fmt.Sprintf("%d\n0\n", i))
				}
			}
			eq := 0
			if len(a) == len(b) {
				eq = 1
			}
			return []byte(fmt.Sprintf("%d\n%d\n", n, eq))
		},
	}
}

// Fgrep counts (possibly overlapping) occurrences of a fixed pattern:
// input is the pattern, a newline, then the text.
func Fgrep() Workload {
	return Workload{
		Name: "fgrep",
		Source: `
	.org 0x10000
_start:	lis r13, BUF1@h
	ori r13, r13, BUF1@l
	mr r5, r13
rdP:	li r0, 2
	sc
	cmpwi r3, 10
	beq rdPd
	cmpwi r3, -1
	beq rdPd
	stb r3, 0(r5)
	addi r5, r5, 1
	b rdP
rdPd:	subf r14, r13, r5    # pattern length
	lis r15, BUF2@h
	ori r15, r15, BUF2@l
	mr r3, r15
	bl readall
	mr r16, r3           # text length
	li r17, 0            # match count
	cmpwi r14, 0
	beq out              # empty pattern: 0 matches
	subf r18, r14, r16   # last start index
	li r7, 0             # i
scan:	cmpw r7, r18
	bgt out
	li r8, 0             # j
	lbz r9, 0(r13)       # pattern[0]
	lbzx r10, r15, r7
	cmpw r9, r10         # quick first-byte test
	bne nomatch
inner2:	cmpw r8, r14
	bge hit
	add r11, r7, r8
	lbzx r10, r15, r11
	lbzx r9, r13, r8
	cmpw r9, r10
	bne nomatch
	addi r8, r8, 1
	b inner2
hit:	addi r17, r17, 1
nomatch:
	addi r7, r7, 1
	b scan
out:	mr r3, r17
	bl putnum
	li r0, 0
	sc
` + common,
		Input: func(scale int) []byte {
			text := textInput(31, 300*scale)
			return append([]byte("the\n"), text...)
		},
		Model: func(in []byte) []byte {
			nl := -1
			for i, b := range in {
				if b == '\n' {
					nl = i
					break
				}
			}
			if nl < 0 {
				return []byte("0\n")
			}
			pat, text := in[:nl], in[nl+1:]
			count := 0
			if len(pat) > 0 {
				for i := 0; i+len(pat) <= len(text); i++ {
					ok := true
					for j := range pat {
						if text[i+j] != pat[j] {
							ok = false
							break
						}
					}
					if ok {
						count++
					}
				}
			}
			return []byte(fmt.Sprintf("%d\n", count))
		},
	}
}

// Sort reads its input, sorts the bytes with quicksort (insertion sort
// below a threshold) and writes the sorted bytes back out.
func Sort() Workload {
	return Workload{
		Name: "sort",
		Source: `
	.org 0x10000
_start:	lis r13, BUF1@h
	ori r13, r13, BUF1@l
	mr r3, r13
	bl readall
	mr r14, r3           # n
	cmpwi r14, 2
	blt emit
	# explicit range stack at BUF3
	lis r1, BUF3@h
	ori r1, r1, BUF3@l
	li r5, 0             # lo
	subi r6, r14, 1      # hi
	stw r5, 0(r1)
	stw r6, 4(r1)
	addi r1, r1, 8
qloop:	lis r7, BUF3@h
	ori r7, r7, BUF3@l
	cmpw r1, r7
	ble emit             # stack empty
	lwz r6, -4(r1)       # hi
	lwz r5, -8(r1)       # lo
	subi r1, r1, 8
	subf r8, r5, r6      # hi-lo
	cmpwi r8, 12
	blt isort
	# partition: pivot = buf[hi]
	lbzx r9, r13, r6     # pivot
	subi r10, r5, 1      # i = lo-1
	mr r11, r5           # j
part:	cmpw r11, r6
	bge pdone
	lbzx r12, r13, r11
	cmpw r12, r9
	bge pskip
	addi r10, r10, 1
	lbzx r4, r13, r10
	stbx r12, r13, r10
	stbx r4, r13, r11
pskip:	addi r11, r11, 1
	b part
pdone:	addi r10, r10, 1     # pivot slot
	lbzx r4, r13, r10
	stbx r9, r13, r10
	stbx r4, r13, r6
	# push (lo, p-1) and (p+1, hi)
	subi r4, r10, 1
	cmpw r5, r4
	bge nopush1
	stw r5, 0(r1)
	stw r4, 4(r1)
	addi r1, r1, 8
nopush1:
	addi r4, r10, 1
	cmpw r4, r6
	bge qloop
	stw r4, 0(r1)
	stw r6, 4(r1)
	addi r1, r1, 8
	b qloop
isort:	# insertion sort buf[lo..hi]
	addi r9, r5, 1       # i
iloop:	cmpw r9, r6
	bgt qloop
	lbzx r10, r13, r9    # key
	subi r11, r9, 1      # j
ishift:	cmpw r11, r5
	blt iplace
	lbzx r12, r13, r11
	cmpw r12, r10
	ble iplace
	addi r4, r11, 1
	stbx r12, r13, r4
	subi r11, r11, 1
	b ishift
iplace:	addi r4, r11, 1
	stbx r10, r13, r4
	addi r9, r9, 1
	b iloop
emit:	mr r3, r13
	mr r4, r14
	li r0, 3
	sc
	li r0, 0
	sc
` + common,
		Input: func(scale int) []byte {
			rng := rand.New(rand.NewSource(41))
			n := 600 * scale
			out := make([]byte, n)
			for i := range out {
				out[i] = byte(32 + rng.Intn(95))
			}
			return out
		},
		Model: func(in []byte) []byte {
			out := append([]byte(nil), in...)
			// counting sort: equivalent result
			var cnt [256]int
			for _, b := range out {
				cnt[b]++
			}
			i := 0
			for v := 0; v < 256; v++ {
				for k := 0; k < cnt[v]; k++ {
					out[i] = byte(v)
					i++
				}
			}
			return out
		},
	}
}
