// Package workload provides the benchmark programs of the paper's
// evaluation, rewritten for the base-architecture subset: compress (LZW),
// lex (a DFA tokenizer), fgrep (fixed-string search), wc, cmp, sort
// (quicksort + insertion sort), c_sieve (the Stanford sieve) and a
// gcc stand-in (an expression compiler plus bytecode interpreter — the
// same parse/dispatch-heavy shape that makes gcc hard for ILP machines).
//
// Each workload carries its assembly source, a deterministic input
// generator, and an independent Go model computing the expected output, so
// the interpreter and the DAISY machine can both be checked against an
// oracle that shares no code with either.
package workload

import (
	"fmt"
	"math/rand"

	"daisy/internal/asm"
)

// Workload is one benchmark program.
type Workload struct {
	Name   string
	Source string
	// Input generates a deterministic input stream; scale grows the work
	// roughly linearly.
	Input func(scale int) []byte
	// Model computes the expected output for an input.
	Model func(in []byte) []byte
}

// Build assembles the workload.
func (w Workload) Build() (*asm.Program, error) {
	p, err := asm.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

// All returns every workload, in the paper's table order.
func All() []Workload {
	return []Workload{
		Compress(), Lex(), Fgrep(), Wc(), Cmp(), Sort(), Sieve(), Gcc(),
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// common holds the runtime routines shared by all workloads: decimal
// output, stream input, and the scratch areas they use. Programs start at
// 0x10000; big buffers live from 0x100000 up.
const common = `
# The shared runtime lives on its own page, like the library code of a
# real binary: calls into it (and returns out of it) are cross-page
# branches (Table 5.6).
	.org 0x14000
	.equ BUF1, 0x100000
	.equ BUF2, 0x180000
	.equ BUF3, 0x200000
	.equ NUMBUF, 0x280000    # scratch for putnum, away from code pages

# putnum: print unsigned r3 in decimal followed by a newline.
# clobbers r3-r9 and r0.
putnum:	lis r4, NUMBUF@h
	ori r4, r4, NUMBUF@l
	addi r4, r4, 15
	li r5, 10
	li r6, 0
pn1:	divwu r7, r3, r5
	mullw r8, r7, r5
	subf r8, r8, r3
	addi r8, r8, '0'
	stbu r8, -1(r4)
	addi r6, r6, 1
	mr r3, r7
	cmpwi r3, 0
	bne pn1
	mr r3, r4
	mr r4, r6
	li r0, 3
	sc
	li r3, 10
	li r0, 1
	sc
	blr

# readall: read the entire input into the buffer at r3.
# Returns the length in r3. Clobbers r4-r6 and r0.
readall:
	mr r5, r3
	mr r6, r3
ra1:	li r0, 2
	sc
	cmpwi r3, -1
	beq ra2
	stb r3, 0(r5)
	addi r5, r5, 1
	b ra1
ra2:	subf r3, r6, r5
	blr

# readnum: parse an unsigned decimal number from the input, stopping at
# the first non-digit (consumed). Returns it in r3. Clobbers r4, r0.
readnum:
	li r4, 0
rn1:	li r0, 2
	sc
	cmpwi r3, '0'
	blt rn2
	cmpwi r3, '9'
	bgt rn2
	subi r3, r3, '0'
	mulli r4, r4, 10
	add r4, r4, r3
	b rn1
rn2:	mr r3, r4
	blr
`

// words for synthetic text inputs.
var textWords = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"daisy", "vliw", "dynamic", "compilation", "architecture", "translation",
	"register", "renaming", "precise", "exception", "tree", "instruction",
	"page", "branch", "memory", "cache", "issue", "parallel",
}

// textInput builds deterministic prose-like input.
func textInput(seed int64, words int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	col := 0
	for i := 0; i < words; i++ {
		w := textWords[rng.Intn(len(textWords))]
		out = append(out, w...)
		col += len(w) + 1
		if col > 60 {
			out = append(out, '\n')
			col = 0
		} else {
			out = append(out, ' ')
		}
	}
	out = append(out, '\n')
	return out
}
