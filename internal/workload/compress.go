package workload

// Compress is a 12-bit LZW compressor in the mould of SPEC compress: a
// hash table with linear probing maps (prefix-code, byte) pairs to
// dictionary codes; each emitted code is written as two output bytes.
// The Go model implements the identical algorithm, so output equality is
// exact.

import "math/rand"

const (
	lzwHashSize = 8192
	lzwMaxCode  = 4096
)

// lzwModel is the reference implementation shared with the test oracle.
func lzwModel(in []byte) []byte {
	if len(in) == 0 {
		return nil
	}
	htab := make([]uint16, lzwHashSize)
	for i := range htab {
		htab[i] = 0xffff
	}
	keys := make([]uint32, lzwMaxCode)
	var out []byte
	emit := func(code uint32) {
		out = append(out, byte(code>>8), byte(code))
	}
	next := uint32(256)
	w := uint32(in[0])
	for _, cb := range in[1:] {
		c := uint32(cb)
		key := w<<8 | c
		h := (w<<3 ^ c) & (lzwHashSize - 1)
		for {
			e := htab[h]
			if e == 0xffff {
				emit(w)
				if next < lzwMaxCode {
					htab[h] = uint16(next)
					keys[next] = key
					next++
				}
				w = c
				break
			}
			if keys[e] == key {
				w = uint32(e)
				break
			}
			h = (h + 1) & (lzwHashSize - 1)
		}
	}
	emit(w)
	return out
}

// Compress returns the LZW workload.
func Compress() Workload {
	return Workload{
		Name: "compress",
		Source: `
	.org 0x10000
_start:	lis r13, BUF2@h
	ori r13, r13, BUF2@l    # htab (halfwords)
	lis r14, BUF3@h
	ori r14, r14, BUF3@l    # keys (words)
	# clear hash table to 0xFFFF
	li r4, 0
	lis r5, 0
	ori r5, r5, 0xffff
init:	cmpwi r4, 8192
	bge initd
	slwi r6, r4, 1
	sthx r5, r13, r6
	addi r4, r4, 1
	b init
initd:	li r15, 256             # next code
	li r0, 2
	sc                      # w = getc
	cmpwi r3, -1
	beq fin
	mr r16, r3              # w
mloop:	li r0, 2
	sc
	cmpwi r3, -1
	beq flush
	mr r17, r3              # c
	slwi r18, r16, 8
	or r18, r18, r17        # key
	slwi r19, r16, 3
	xor r19, r19, r17
	andi. r19, r19, 8191    # hash
probe:	slwi r6, r19, 1
	lhzx r20, r13, r6       # entry
	cmplwi r20, 0xffff
	beq notfnd
	slwi r6, r20, 2
	lwzx r21, r14, r6
	cmpw r21, r18
	bne coll
	mr r16, r20             # found: w = code
	b mloop
coll:	addi r19, r19, 1
	andi. r19, r19, 8191
	b probe
notfnd:	bl emit
	cmpwi r15, 4096
	bge noins
	slwi r6, r19, 1
	sthx r15, r13, r6
	slwi r6, r15, 2
	stwx r18, r14, r6
	addi r15, r15, 1
noins:	mr r16, r17
	b mloop
flush:	bl emit
fin:	li r0, 0
	sc

# emit: write code r16 as two bytes. Clobbers r3, r0.
emit:	srwi r3, r16, 8
	li r0, 1
	sc
	andi. r3, r16, 255
	li r0, 1
	sc
	blr
` + common,
		Input: func(scale int) []byte {
			// Compressible prose with repeats plus a random tail.
			base := textInput(61, 120*scale)
			rng := rand.New(rand.NewSource(62))
			tail := make([]byte, 40*scale)
			for i := range tail {
				tail[i] = byte(33 + rng.Intn(90))
			}
			out := append([]byte(nil), base...)
			out = append(out, base...) // repetition: dictionary hits
			return append(out, tail...)
		},
		Model: lzwModel,
	}
}
