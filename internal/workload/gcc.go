package workload

// Gcc is the stand-in for the paper's gcc benchmark: an expression
// compiler. Phase one is a recursive-descent parser compiling each input
// line to stack-machine bytecode (PUSH/ADD/SUB/MUL/END); phase two is a
// bytecode interpreter with a dispatch loop. Parsing plus switch-style
// dispatch over irregular input reproduces the branchy, large-working-set
// character that holds gcc's ILP down in Table 5.1.

import (
	"fmt"
	"math/rand"
	"strings"
)

// gccModel parses and evaluates with the same grammar:
// expr := term (('+'|'-') term)* ; term := factor ('*' factor)* ;
// factor := number | '(' expr ')'. Arithmetic is uint32.
func gccModel(in []byte) []byte {
	var out []byte
	for _, line := range strings.Split(string(in), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p := &exprParser{s: line}
		v := p.expr()
		out = append(out, fmt.Sprintf("%d\n", v)...)
	}
	return out
}

type exprParser struct {
	s string
	i int
}

func (p *exprParser) peek() byte {
	for p.i < len(p.s) && p.s[p.i] == ' ' {
		p.i++
	}
	if p.i >= len(p.s) {
		return 0
	}
	return p.s[p.i]
}

func (p *exprParser) expr() uint32 {
	v := p.term()
	for {
		switch p.peek() {
		case '+':
			p.i++
			v += p.term()
		case '-':
			p.i++
			v -= p.term()
		default:
			return v
		}
	}
}

func (p *exprParser) term() uint32 {
	v := p.factor()
	for p.peek() == '*' {
		p.i++
		v *= p.factor()
	}
	return v
}

func (p *exprParser) factor() uint32 {
	if p.peek() == '(' {
		p.i++
		v := p.expr()
		p.peek()
		p.i++ // ')'
		return v
	}
	var v uint32
	for p.i < len(p.s) && p.s[p.i] >= '0' && p.s[p.i] <= '9' {
		v = v*10 + uint32(p.s[p.i]-'0')
		p.i++
	}
	return v
}

// Gcc returns the expression-compiler workload.
func Gcc() Workload {
	return Workload{
		Name: "gcc",
		Source: `
	.org 0x10000
# Register conventions:
#   r1  call stack pointer (grows down from BUF3+64K)
#   r28 bytecode emit cursor
#   r30 lookahead character
_start:	lis r1, BUF3@h
	ori r1, r1, BUF3@l
	addi r1, r1, 0x7000
	bl nextch
mline:	cmpwi r30, -1
	beq endall
	cmpwi r30, 10
	bne comp
	bl nextch
	b mline
comp:	lis r28, BUF2@h
	ori r28, r28, BUF2@l
	bl cexpr
	li r4, 4                # END opcode
	stb r4, 0(r28)
	bl runvm
	lis r9, putnum@ha       # indirect call through a "function pointer"
	addi r9, r9, putnum@l
	mtctr r9
	bctrl
	b mline
endall:	li r0, 0
	sc

# nextch: lookahead := getc. Leaf.
nextch:	li r0, 2
	sc
	mr r30, r3
	blr

# skipsp: advance past spaces. Leaf.
skipsp:	cmpwi r30, ' '
	bnelr
	li r0, 2
	sc
	mr r30, r3
	b skipsp

# cexpr: compile expr := term (('+'|'-') term)*
cexpr:	mflr r7
	stwu r7, -4(r1)
	bl cterm
cexlp:	bl skipsp
	cmpwi r30, '+'
	beq cexadd
	cmpwi r30, '-'
	beq cexsub
	lwz r7, 0(r1)
	addi r1, r1, 4
	mtlr r7
	blr
cexadd:	bl nextch
	bl cterm
	li r4, 1
	stb r4, 0(r28)
	addi r28, r28, 1
	b cexlp
cexsub:	bl nextch
	bl cterm
	li r4, 2
	stb r4, 0(r28)
	addi r28, r28, 1
	b cexlp

# cterm: compile term := factor ('*' factor)*
cterm:	mflr r7
	stwu r7, -4(r1)
	bl cfact
ctlp:	bl skipsp
	cmpwi r30, '*'
	bne ctret
	bl nextch
	bl cfact
	li r4, 3
	stb r4, 0(r28)
	addi r28, r28, 1
	b ctlp
ctret:	lwz r7, 0(r1)
	addi r1, r1, 4
	mtlr r7
	blr

# cfact: compile factor := number | '(' expr ')'
cfact:	mflr r7
	stwu r7, -4(r1)
	bl skipsp
	cmpwi r30, '('
	bne cnum
	bl nextch
	bl cexpr
	bl skipsp
	bl nextch               # consume ')'
	b cfret
cnum:	li r5, 0
cnlp:	cmpwi r30, '0'
	blt cndone
	cmpwi r30, '9'
	bgt cndone
	mulli r5, r5, 10
	subi r4, r30, '0'
	add r5, r5, r4
	bl nextch
	b cnlp
cndone:	li r4, 0                # PUSH opcode
	stb r4, 0(r28)
	stw r5, 1(r28)
	addi r28, r28, 5
cfret:	lwz r7, 0(r1)
	addi r1, r1, 4
	mtlr r7
	blr

# runvm: execute the bytecode at BUF2; result in r3. The dispatch is a
# jump table through the count register — the computed-branch shape of a
# compiled C switch statement. Clobbers r5-r12 and CTR (saves LR in r27).
runvm:	mflr r27
	lis r5, BUF2@h
	ori r5, r5, BUF2@l      # instruction pointer
	lis r6, BUF1@h
	ori r6, r6, BUF1@l      # operand stack (grows up)
	lis r11, vmtab@ha
	addi r11, r11, vmtab@l
vmlp:	lbz r7, 0(r5)
	addi r5, r5, 1
	slwi r7, r7, 2
	lwzx r12, r11, r7
	mtctr r12
	bctr
vmend:	lwz r3, -4(r6)          # END: result on top
	mtlr r27
	blr
vmpush:	lwz r8, 0(r5)
	addi r5, r5, 4
	stw r8, 0(r6)
	addi r6, r6, 4
	b vmlp
vmadd:	lwz r8, -8(r6)
	lwz r9, -4(r6)
	add r8, r8, r9
	stw r8, -8(r6)
	subi r6, r6, 4
	b vmlp
vmsub:	lwz r8, -8(r6)
	lwz r9, -4(r6)
	subf r8, r9, r8
	stw r8, -8(r6)
	subi r6, r6, 4
	b vmlp
vmmul:	lwz r8, -8(r6)
	lwz r9, -4(r6)
	mullw r8, r8, r9
	stw r8, -8(r6)
	subi r6, r6, 4
	b vmlp
	.align 4
vmtab:	.word vmpush, vmadd, vmsub, vmmul, vmend
` + common,
		Input: func(scale int) []byte {
			rng := rand.New(rand.NewSource(71))
			var out []byte
			for i := 0; i < 12*scale; i++ {
				out = append(out, genExpr(rng, 3)...)
				out = append(out, '\n')
			}
			return out
		},
		Model: gccModel,
	}
}

// genExpr emits a random well-formed expression.
func genExpr(rng *rand.Rand, depth int) []byte {
	if depth == 0 || rng.Intn(3) == 0 {
		return []byte(fmt.Sprint(rng.Intn(1000)))
	}
	var out []byte
	switch rng.Intn(4) {
	case 0:
		out = append(out, '(')
		out = append(out, genExpr(rng, depth-1)...)
		out = append(out, ')')
	case 1:
		out = append(out, genExpr(rng, depth-1)...)
		out = append(out, []byte(" + ")...)
		out = append(out, genExpr(rng, depth-1)...)
	case 2:
		out = append(out, genExpr(rng, depth-1)...)
		out = append(out, []byte(" - ")...)
		out = append(out, genExpr(rng, depth-1)...)
	default:
		out = append(out, genExpr(rng, depth-1)...)
		out = append(out, '*')
		out = append(out, genExpr(rng, depth-1)...)
	}
	return out
}
