// Package cache simulates the memory hierarchy used for the paper's
// finite-cache experiments (Tables 5.3-5.5, Figure 5.2): set-associative
// LRU caches with configurable line size, capacity and latency, composed
// into the two hierarchies the paper measures.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name    string
	Size    uint32 // bytes
	Assoc   int    // ways; 1 = direct mapped
	Line    uint32 // bytes per line
	Latency uint64 // cycles charged on a hit at this level
}

// Cache is one set-associative LRU cache level.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint32

	Accesses uint64
	Misses   uint64
}

type line struct {
	tag   uint32
	valid bool
	stamp uint64
}

// New builds a cache from its configuration.
func New(cfg Config) (*Cache, error) {
	if cfg.Line == 0 || cfg.Line&(cfg.Line-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.Line)
	}
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache %s: associativity %d", cfg.Name, cfg.Assoc)
	}
	nLines := cfg.Size / cfg.Line
	nSets := nLines / uint32(cfg.Assoc)
	if nSets == 0 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets (size/line/assoc mismatch)", cfg.Name, nSets)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nSets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for s := nSets; s > 1; s >>= 1 {
		c.setShift++
	}
	c.setMask = nSets - 1
	return c, nil
}

var stampCounter uint64

// Access looks addr up, filling on miss. It returns true on a hit.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	stampCounter++
	tag := addr / c.cfg.Line
	set := c.sets[tag&c.setMask]
	tag >>= c.setShift

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].stamp = stampCounter
			return true
		}
	}
	c.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, stamp: stampCounter}
	return false
}

// AccessRange touches every line an [addr, addr+size) access covers,
// returning the number of line misses.
func (c *Cache) AccessRange(addr uint32, size int) int {
	misses := 0
	first := addr / c.cfg.Line
	last := (addr + uint32(size) - 1) / c.cfg.Line
	for l := first; l <= last; l++ {
		if !c.Access(l * c.cfg.Line) {
			misses++
		}
	}
	return misses
}

// MissRate returns misses per access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Hierarchy chains cache levels in front of main memory. A data access
// probes successive levels until it hits; the returned stall is the
// latency of the hitting level (main memory if all miss). Instruction
// fetches use the ILevels chain, sharing any levels present in both.
type Hierarchy struct {
	DLevels []*Cache
	ILevels []*Cache
	MemLat  uint64

	// Per-stream statistics for Tables 5.3-5.4.
	LoadMisses  uint64 // first-level data misses on loads
	StoreMisses uint64
	FetchMisses uint64 // first-level instruction misses
}

// DataAccess simulates a load or store and returns stall cycles.
func (h *Hierarchy) DataAccess(addr uint32, size int, write bool) uint64 {
	for i, c := range h.DLevels {
		miss := c.AccessRange(addr, size) > 0
		if !miss {
			return c.cfg.Latency
		}
		if i == 0 {
			if write {
				h.StoreMisses++
			} else {
				h.LoadMisses++
			}
		}
	}
	return h.MemLat
}

// Fetch simulates an instruction fetch of size bytes at addr.
func (h *Hierarchy) Fetch(addr uint32, size int) uint64 {
	for i, c := range h.ILevels {
		miss := c.AccessRange(addr, size) > 0
		if !miss {
			return c.cfg.Latency
		}
		if i == 0 {
			h.FetchMisses++
		}
	}
	return h.MemLat
}

// PaperHierarchyA is the configuration of §5 used with the 24-issue
// machine: 64K L1D (4-way), 64K L1I (direct mapped), shared 4M L2
// (4-way), 256-byte lines throughout, 88-cycle memory.
func PaperHierarchyA() (*Hierarchy, error) {
	l1d, err := New(Config{Name: "L0 DCache", Size: 64 << 10, Assoc: 4, Line: 256, Latency: 0})
	if err != nil {
		return nil, err
	}
	l1i, err := New(Config{Name: "L0 ICache", Size: 64 << 10, Assoc: 1, Line: 256, Latency: 0})
	if err != nil {
		return nil, err
	}
	l2, err := New(Config{Name: "L1 JCache", Size: 4 << 20, Assoc: 4, Line: 256, Latency: 12})
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		DLevels: []*Cache{l1d, l2},
		ILevels: []*Cache{l1i, l2},
		MemLat:  88,
	}, nil
}

// PaperHierarchyB is the 8-issue machine's three-level configuration
// (Table 5.5): 4K L1I/L1D, 64K L2I (2-way) and L2D (4-way), 4M L3,
// 92-cycle memory.
func PaperHierarchyB() (*Hierarchy, error) {
	l1i, err := New(Config{Name: "Lev1 ICache", Size: 4 << 10, Assoc: 1, Line: 64, Latency: 0})
	if err != nil {
		return nil, err
	}
	l1d, err := New(Config{Name: "Lev1 DCache", Size: 4 << 10, Assoc: 4, Line: 64, Latency: 0})
	if err != nil {
		return nil, err
	}
	l2i, err := New(Config{Name: "Lev2 ICache", Size: 64 << 10, Assoc: 2, Line: 128, Latency: 4})
	if err != nil {
		return nil, err
	}
	l2d, err := New(Config{Name: "Lev2 DCache", Size: 64 << 10, Assoc: 4, Line: 128, Latency: 4})
	if err != nil {
		return nil, err
	}
	l3, err := New(Config{Name: "Lev3 JCache", Size: 4 << 20, Assoc: 4, Line: 256, Latency: 16})
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		DLevels: []*Cache{l1d, l2d, l3},
		ILevels: []*Cache{l1i, l2i, l3},
		MemLat:  92,
	}, nil
}
