package cache

import (
	"math/rand"
	"testing"
)

func mk(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDirectMappedBasics(t *testing.T) {
	c := mk(t, Config{Name: "t", Size: 1024, Assoc: 1, Line: 64})
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Fatal("same line must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	// 1024/64 = 16 sets: address 0 and 1024 conflict.
	if c.Access(1024) {
		t.Fatal("aliasing line must miss")
	}
	if c.Access(0) {
		t.Fatal("direct-mapped conflict must evict")
	}
	if got := c.MissRate(); got != 4.0/6.0 {
		t.Fatalf("miss rate = %v", got)
	}
}

func TestAssociativityAndLRU(t *testing.T) {
	// 2-way, 2 sets of 64B lines: size = 256.
	c := mk(t, Config{Name: "t", Size: 256, Assoc: 2, Line: 64})
	// Three conflicting lines in set 0: 0, 128, 256.
	c.Access(0)
	c.Access(128)
	if !c.Access(0) {
		t.Fatal("two-way should hold both")
	}
	c.Access(256) // evicts 128 (LRU)
	if !c.Access(0) {
		t.Fatal("0 was MRU, must survive")
	}
	if c.Access(128) {
		t.Fatal("128 must have been evicted")
	}
}

func TestAccessRangeStraddle(t *testing.T) {
	c := mk(t, Config{Name: "t", Size: 1024, Assoc: 1, Line: 64})
	if m := c.AccessRange(60, 8); m != 2 {
		t.Fatalf("straddling access should miss both lines, got %d", m)
	}
	if m := c.AccessRange(60, 8); m != 0 {
		t.Fatalf("second access should hit, got %d", m)
	}
}

func TestBadConfigs(t *testing.T) {
	bad := []Config{
		{Size: 1024, Assoc: 1, Line: 60},
		{Size: 1024, Assoc: 0, Line: 64},
		{Size: 192, Assoc: 1, Line: 64}, // 3 sets: not a power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := PaperHierarchyA()
	if err != nil {
		t.Fatal(err)
	}
	// Cold: miss everywhere -> memory latency.
	if lat := h.DataAccess(0x1000, 4, false); lat != 88 {
		t.Fatalf("cold access latency = %d", lat)
	}
	// Warm: L1 hit, zero latency.
	if lat := h.DataAccess(0x1000, 4, false); lat != 0 {
		t.Fatalf("warm access latency = %d", lat)
	}
	if h.LoadMisses != 1 {
		t.Fatalf("load misses = %d", h.LoadMisses)
	}
	// Evict from 64K 4-way L1 but not from 4M L2: walk 128K of lines.
	for a := uint32(0); a < 128<<10; a += 256 {
		h.DataAccess(0x100000+a, 4, false)
	}
	if lat := h.DataAccess(0x1000, 4, false); lat != 12 {
		t.Fatalf("L2 hit latency = %d", lat)
	}
	// Instruction side is independent of data L1.
	if lat := h.Fetch(0x2000, 16); lat != 88 {
		t.Fatalf("cold fetch = %d", lat)
	}
	if lat := h.Fetch(0x2000, 16); lat != 0 {
		t.Fatalf("warm fetch = %d", lat)
	}
	if h.FetchMisses != 1 {
		t.Fatalf("fetch misses = %d", h.FetchMisses)
	}
}

func TestHierarchyB(t *testing.T) {
	h, err := PaperHierarchyB()
	if err != nil {
		t.Fatal(err)
	}
	if lat := h.DataAccess(0, 4, true); lat != 92 {
		t.Fatalf("cold = %d", lat)
	}
	if h.StoreMisses != 1 {
		t.Fatal("store miss not counted")
	}
	if lat := h.DataAccess(0, 4, false); lat != 0 {
		t.Fatalf("L1 hit = %d", lat)
	}
	// Push 0 out of the 4K L1 but keep it in the 64K L2.
	for a := uint32(0); a < 8<<10; a += 64 {
		h.DataAccess(0x40000+a, 4, false)
	}
	if lat := h.DataAccess(0, 4, false); lat != 4 {
		t.Fatalf("L2 hit = %d", lat)
	}
}

// TestMissRateMonotone: a bigger cache never has more misses on the same
// trace (with identical line size and full associativity growth).
func TestMissRateMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trace := make([]uint32, 20000)
	for i := range trace {
		// Zipf-ish: mostly small working set, occasional far access.
		if rng.Intn(10) == 0 {
			trace[i] = rng.Uint32() % (1 << 20)
		} else {
			trace[i] = rng.Uint32() % (16 << 10)
		}
	}
	small := mk(t, Config{Name: "s", Size: 8 << 10, Assoc: 8, Line: 64})
	big := mk(t, Config{Name: "b", Size: 64 << 10, Assoc: 8, Line: 64})
	for _, a := range trace {
		small.Access(a)
		big.Access(a)
	}
	if big.Misses > small.Misses {
		t.Fatalf("bigger cache missed more: %d > %d", big.Misses, small.Misses)
	}
	if small.MissRate() <= 0 || small.MissRate() >= 1 {
		t.Fatalf("implausible miss rate %v", small.MissRate())
	}
}
