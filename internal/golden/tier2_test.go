package golden

// The tier-2 equivalence wall. Optimizing retranslation (vmm.Options.Tier2)
// reschedules hot pages with deferred commits and a profiled superblock
// path — an aggressive transformation whose one non-negotiable property is
// that the guest cannot tell: byte-identical output, same completed
// instruction count, and a deterministic event stream. These tests pin all
// three against committed goldens (testdata/golden/<name>.tier2*.json) and
// against the tier-1 goldens recorded by golden_test.go.

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"daisy/internal/core"
	"daisy/internal/interp"
	"daisy/internal/mem"
	"daisy/internal/telemetry"
	"daisy/internal/vmm"
	"daisy/internal/workload"
)

// tier2Options is the pinned configuration of the tier-2 golden wall: the
// default machine with optimizing retranslation forced on and a low
// promotion threshold, so even the short golden-scale runs promote their
// hot pages and execute real tier-2 groups.
func tier2Options() vmm.Options {
	opt := vmm.DefaultOptions()
	opt.Tier2 = true
	opt.Tier2Threshold = 4
	return opt
}

// TestGoldenTier2Runs locks the tier-2 fingerprints of every workload and
// holds the guest-visible half — output bytes and completed instruction
// count — exactly to the tier-1 goldens.
func TestGoldenTier2Runs(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tel := telemetry.New(goldenTelOpt)
			got, err := CaptureRunOpts(w, goldenScale, tel, tier2Options())
			if err != nil {
				t.Fatal(err)
			}
			gotEv := CaptureEvents(w, goldenScale, tel, goldenTelOpt)

			// The architectural-compatibility assertion: a tier-2 machine
			// must be indistinguishable from tier-1 in everything the guest
			// can observe, even though its boundary stream (and so its state
			// digest) is legitimately different.
			var t1 Run
			if err := ReadJSON(filepath.Join("testdata", "golden", w.Name+".json"), &t1); err != nil {
				t.Fatalf("missing tier-1 golden: %v", err)
			}
			if got.OutputFNV != t1.OutputFNV || got.OutputLen != t1.OutputLen {
				t.Errorf("tier-2 guest output diverged from tier-1: got %s/%d want %s/%d",
					got.OutputFNV, got.OutputLen, t1.OutputFNV, t1.OutputLen)
			}
			if got.Insts != t1.Insts {
				t.Errorf("tier-2 completed %d base insts, tier-1 completed %d (deopt rollback must uncount re-executed work)",
					got.Insts, t1.Insts)
			}
			if got.FinalDigest != t1.FinalDigest {
				t.Errorf("tier-2 halt state %s differs from tier-1 %s", got.FinalDigest, t1.FinalDigest)
			}

			runPath := filepath.Join("testdata", "golden", w.Name+".tier2.json")
			evPath := filepath.Join("testdata", "golden", w.Name+".tier2.events.json")
			if *update {
				if err := WriteJSON(runPath, got); err != nil {
					t.Fatal(err)
				}
				if err := WriteJSON(evPath, gotEv); err != nil {
					t.Fatal(err)
				}
				return
			}
			var want Run
			if err := ReadJSON(runPath, &want); err != nil {
				t.Fatalf("missing tier-2 golden (run with -update to record): %v", err)
			}
			if !reflect.DeepEqual(*got, want) {
				t.Errorf("tier-2 state golden mismatch for %s:\n got  %+v\n want %+v\n(rerun with -update if the change is intended)",
					w.Name, *got, want)
			}
			var wantEv Events
			if err := ReadJSON(evPath, &wantEv); err != nil {
				t.Fatalf("missing tier-2 events golden (run with -update to record): %v", err)
			}
			if !reflect.DeepEqual(*gotEv, wantEv) {
				t.Errorf("tier-2 events golden mismatch for %s:\n got  %+v\n want %+v\n(rerun with -update if the change is intended)",
					w.Name, *gotEv, wantEv)
			}
		})
	}
}

// TestTier2TranslationDeterminism runs one hot workload twice with tier-2
// pinned on and insists both runs produce identical translations: the same
// pages promoted in the same order with byte-identical group schedules.
// This is what makes the tier-2 goldens above meaningful — promotion is
// driven purely by the deterministic instruction clock and the promotion
// profiler runs on cloned state, so no host timing can reach the schedule.
func TestTier2TranslationDeterminism(t *testing.T) {
	capture := func() (string, uint64, *vmm.Stats) {
		w, err := workload.ByName("c_sieve")
		if err != nil {
			t.Fatal(err)
		}
		prog, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New(memSize)
		if err := prog.Load(m); err != nil {
			t.Fatal(err)
		}
		env := &interp.Env{In: w.Input(goldenScale)}
		ma, err := vmm.NewMachine(m, env, tier2Options())
		if err != nil {
			t.Fatal(err)
		}
		var log string
		digest := uint64(fnvOffset)
		ma.OnTranslate = func(pt *core.PageTranslation) {
			for _, e := range pt.Order {
				g := pt.Groups[e]
				log += fmt.Sprintf("%x:%d:%d;", e, g.TierOf(), len(g.VLIWs))
				digest = fnvBytes2(digest, []byte(g.Dump()))
			}
		}
		if err := ma.Run(prog.Entry(), 0); err != nil {
			t.Fatal(err)
		}
		return log, digest, &ma.Stats
	}
	log1, d1, st1 := capture()
	log2, d2, st2 := capture()
	if st1.Tier2Promotions == 0 {
		t.Fatal("no tier-2 promotions happened; the determinism check is vacuous")
	}
	if st1.Tier2Dispatches == 0 {
		t.Fatal("no dispatches were served by a tier-2 group")
	}
	if log1 != log2 {
		t.Errorf("translation order/shape diverged between identical runs:\n run1 %s\n run2 %s", log1, log2)
	}
	if d1 != d2 {
		t.Errorf("translated group schedules diverged between identical runs: %016x vs %016x", d1, d2)
	}
	if st1.Tier2Promotions != st2.Tier2Promotions || st1.Tier2Deopts != st2.Tier2Deopts ||
		st1.Tier2Dispatches != st2.Tier2Dispatches {
		t.Errorf("tier-2 policy counters diverged: %d/%d/%d vs %d/%d/%d",
			st1.Tier2Promotions, st1.Tier2Deopts, st1.Tier2Dispatches,
			st2.Tier2Promotions, st2.Tier2Deopts, st2.Tier2Dispatches)
	}
}

// fnvBytes2 folds b into an existing FNV-1a accumulator.
func fnvBytes2(d uint64, b []byte) uint64 {
	for _, c := range b {
		d = (d ^ uint64(c)) * fnvPrime
	}
	return d
}
