package golden

import (
	"flag"
	"path/filepath"
	"reflect"
	"testing"

	"daisy/internal/telemetry"
	"daisy/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current implementation")

// goldenScale keeps every workload's golden run small enough for CI while
// still crossing page boundaries, chaining, and (for the suite's heavier
// members) thousands of precise boundaries.
const goldenScale = 1

// goldenTelOpt is the telemetry configuration the event goldens are
// recorded under. Sampling at 1-in-8 exercises the sampled paths many
// times per run; the small ring forces wrap-around on the bigger
// workloads, locking down the digest-covers-overwritten-events property.
var goldenTelOpt = telemetry.Options{SampleEvery: 8, TraceCap: 1 << 12}

// TestGoldenRuns locks the per-boundary architected-state digests and the
// telemetry event streams of every workload to the committed goldens.
func TestGoldenRuns(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tel := telemetry.New(goldenTelOpt)
			got, err := CaptureRun(w, goldenScale, tel)
			if err != nil {
				t.Fatal(err)
			}
			gotEv := CaptureEvents(w, goldenScale, tel, goldenTelOpt)

			runPath := filepath.Join("testdata", "golden", w.Name+".json")
			evPath := filepath.Join("testdata", "golden", w.Name+".events.json")
			if *update {
				if err := WriteJSON(runPath, got); err != nil {
					t.Fatal(err)
				}
				if err := WriteJSON(evPath, gotEv); err != nil {
					t.Fatal(err)
				}
				return
			}

			var want Run
			if err := ReadJSON(runPath, &want); err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if !reflect.DeepEqual(*got, want) {
				t.Errorf("state golden mismatch for %s:\n got  %+v\n want %+v\n(rerun with -update if the change is intended)",
					w.Name, *got, want)
			}

			var wantEv Events
			if err := ReadJSON(evPath, &wantEv); err != nil {
				t.Fatalf("missing events golden (run with -update to record): %v", err)
			}
			if !reflect.DeepEqual(*gotEv, wantEv) {
				t.Errorf("events golden mismatch for %s:\n got  %+v\n want %+v\n(rerun with -update if the change is intended)",
					w.Name, *gotEv, wantEv)
			}
		})
	}
}

// TestGoldenDeterminism re-captures one workload twice and insists the
// fingerprints are identical — the property every other golden test
// depends on. It would catch, e.g., host-clock leakage into event streams
// or map-iteration order reaching a digest.
func TestGoldenDeterminism(t *testing.T) {
	w, err := workload.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	tel1 := telemetry.New(goldenTelOpt)
	r1, err := CaptureRun(w, goldenScale, tel1)
	if err != nil {
		t.Fatal(err)
	}
	tel2 := telemetry.New(goldenTelOpt)
	r2, err := CaptureRun(w, goldenScale, tel2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("state capture is not deterministic:\n run1 %+v\n run2 %+v", r1, r2)
	}
	e1 := CaptureEvents(w, goldenScale, tel1, goldenTelOpt)
	e2 := CaptureEvents(w, goldenScale, tel2, goldenTelOpt)
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("event capture is not deterministic:\n run1 %+v\n run2 %+v", e1, e2)
	}
}
