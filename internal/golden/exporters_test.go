package golden

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"daisy/internal/telemetry"
	"daisy/internal/workload"
)

// exporterTelOpt uses a deliberately tiny ring so the JSONL/Chrome goldens
// stay small: they lock down the retained window plus the formatting.
// Spans are on so the goldens also pin the page-lifecycle begin/end
// records (deterministic on the synchronous machine: live spans only,
// stamped with the virtual clock).
var exporterTelOpt = telemetry.Options{SampleEvery: 8, TraceCap: 256, Spans: true}

// captureExporters runs c_sieve once and renders every exporter from the
// canonical snapshot (host-clock metrics zeroed), so the outputs are
// byte-deterministic.
func captureExporters(t *testing.T) map[string][]byte {
	t.Helper()
	w, err := workload.ByName("c_sieve")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(exporterTelOpt)
	if _, err := CaptureRun(w, 1, tel); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot().Canonical()

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome bytes.Buffer
	if err := tel.Tracer().WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := tel.Tracer().WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	top := telemetry.RenderTop(snap, 0, telemetry.TopOptions{Rows: 5})

	return map[string][]byte{
		"c_sieve.prom":         prom.Bytes(),
		"c_sieve.trace.jsonl":  jsonl.Bytes(),
		"c_sieve.trace.chrome": chrome.Bytes(),
		"c_sieve.top":          []byte(top),
	}
}

// TestExporterGoldens locks the Prometheus text, JSONL trace, Chrome
// trace_event file and daisy-top screen for a full c_sieve run to the
// committed golden files (acceptance: exporters verified by golden-file
// tests, not eyeballing).
func TestExporterGoldens(t *testing.T) {
	got := captureExporters(t)
	for name, data := range got {
		path := filepath.Join("testdata", "golden", name)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update to record): %v", name, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s differs from golden (%d vs %d bytes); rerun with -update if intended",
				name, len(data), len(want))
		}
	}
}

// TestRenderTopWithWall smoke-checks the non-deterministic parts RenderTop
// omits from the golden: a positive wall duration must add the wall line
// and, with live (non-canonical) time counters, the time-split line.
func TestRenderTopWithWall(t *testing.T) {
	w, err := workload.ByName("c_sieve")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(exporterTelOpt)
	if _, err := CaptureRun(w, 1, tel); err != nil {
		t.Fatal(err)
	}
	out := telemetry.RenderTop(tel.Snapshot(), 2*time.Second, telemetry.TopOptions{})
	for _, want := range []string{"wall 2.000s", "time split: translate"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("RenderTop missing %q in:\n%s", want, out)
		}
	}
}
