package golden

// Golden-file tests for the guest attribution profiler: the flat report,
// the annotated disassembly, and the pprof payload (stored uncompressed —
// the gzip layer is Go-version-dependent in principle, the proto payload
// is ours alone) for a c_sieve run attributed at sample=1.

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"

	"daisy/internal/interp"
	"daisy/internal/mem"
	"daisy/internal/telemetry"
	"daisy/internal/vmm"
	"daisy/internal/workload"
)

// captureProfile runs c_sieve with the profiler on (every dispatch
// attributed) and returns the machine plus the canonical profile.
func captureProfile(t *testing.T) (*vmm.Machine, *telemetry.Profile) {
	t.Helper()
	w, err := workload.ByName("c_sieve")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(memSize)
	if err := prog.Load(m); err != nil {
		t.Fatal(err)
	}
	ma := vmm.New(m, &interp.Env{In: w.Input(1)}, vmm.DefaultOptions())
	t.Cleanup(ma.Close)
	tel := telemetry.New(telemetry.Options{SampleEvery: 1, Profile: true})
	ma.AttachTelemetry(tel)
	if err := ma.Run(prog.Entry(), 0); err != nil {
		t.Fatal(err)
	}
	ma.SyncTelemetry()
	return ma, tel.Profile().Canonical()
}

// TestProfileGoldens locks the profiler's three views down byte-for-byte.
func TestProfileGoldens(t *testing.T) {
	ma, prof := captureProfile(t)

	var gzipped bytes.Buffer
	if err := prof.WritePprof(&gzipped); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(gzipped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}

	pages := prof.Pages()
	if len(pages) == 0 {
		t.Fatal("profile attributed nothing")
	}
	got := map[string][]byte{
		"c_sieve.profile.pb":    proto,
		"c_sieve.profile.top":   []byte(prof.RenderTop(10)),
		"c_sieve.profile.annot": []byte(ma.AnnotatedDisassembly(prof, pages[0].Base)),
	}
	for name, data := range got {
		path := filepath.Join("testdata", "golden", name)
		if *update {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update to record): %v", name, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s differs from golden (%d vs %d bytes); rerun with -update if intended",
				name, len(data), len(want))
		}
	}

	// The exported payload must also pass the structural validator — the
	// same gate make profile-smoke runs.
	sum, err := telemetry.ValidatePprof(&gzipped)
	if err != nil {
		t.Fatalf("golden pprof payload invalid: %v", err)
	}
	if sum.Samples == 0 {
		t.Fatal("golden pprof payload has no samples")
	}
}

// TestProfileGoldenDeterminism re-captures the profile and insists the
// canonical pprof payload is byte-identical — the profiler's equivalent of
// TestGoldenDeterminism.
func TestProfileGoldenDeterminism(t *testing.T) {
	_, p1 := captureProfile(t)
	_, p2 := captureProfile(t)
	var b1, b2 bytes.Buffer
	if err := p1.WritePprof(&b1); err != nil {
		t.Fatal(err)
	}
	if err := p2.WritePprof(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical profiled runs exported different pprof payloads")
	}
}
