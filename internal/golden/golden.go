// Package golden records deterministic execution fingerprints of the
// workload suite — per-boundary architected-state digests plus telemetry
// event-stream digests — and locks them down as testdata goldens. It is
// the standing oracle of this repo: any change to translation, chaining,
// recovery or tracing that alters observable behaviour shows up as a
// golden diff, reviewed explicitly via `go test ./internal/golden -update`.
package golden

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"daisy/internal/interp"
	"daisy/internal/mem"
	"daisy/internal/ppc"
	"daisy/internal/telemetry"
	"daisy/internal/vmm"
	"daisy/internal/workload"
)

// memSize matches the chaos harness's workload memory image.
const memSize = 8 << 20

// checkpointEvery is the boundary stride between recorded intermediate
// digests: frequent enough to localize a regression to a slice of the run,
// sparse enough to keep golden files small.
const checkpointEvery = 1024

// Checkpoint is an intermediate state digest at one precise boundary.
type Checkpoint struct {
	Boundary uint64 `json:"boundary"`
	Digest   string `json:"digest"`
}

// Run is the golden fingerprint of one workload execution on the DAISY
// machine. Every field is a deterministic function of (workload, scale).
type Run struct {
	Workload    string       `json:"workload"`
	Scale       int          `json:"scale"`
	Boundaries  uint64       `json:"boundaries"`   // StepGroup precise sync points
	StateDigest string       `json:"state_digest"` // rolling FNV over every boundary state
	Checkpoints []Checkpoint `json:"checkpoints"`
	Insts       uint64       `json:"insts"` // completed base instructions
	OutputLen   int          `json:"output_len"`
	OutputFNV   string       `json:"output_fnv"`
	FinalDigest string       `json:"final_digest"` // digest of the halt state alone
}

// Events is the golden fingerprint of the telemetry event stream produced
// by the same run: total count, per-kind counts, and the tracer's rolling
// digest (which covers every event, including any the ring overwrote).
type Events struct {
	Workload    string            `json:"workload"`
	Scale       int               `json:"scale"`
	SampleEvery int               `json:"sample_every"`
	TraceCap    int               `json:"trace_cap"`
	Events      uint64            `json:"events"`
	Digest      string            `json:"digest"`
	ByKind      map[string]uint64 `json:"by_kind"`
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvWord(d, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		d = (d ^ (w & 0xff)) * fnvPrime
		w >>= 8
	}
	return d
}

// StateDigest hashes every architected register of one state.
func StateDigest(st *ppc.State) uint64 {
	d := uint64(fnvOffset)
	for _, g := range st.GPR {
		d = fnvWord(d, uint64(g))
	}
	for _, w := range [...]uint32{st.CR, st.LR, st.CTR, st.XER, st.PC, st.MSR,
		st.SRR0, st.SRR1, st.DAR, st.DSISR, st.SDR1} {
		d = fnvWord(d, uint64(w))
	}
	return d
}

func fnvBytes(b []byte) uint64 {
	d := uint64(fnvOffset)
	for _, c := range b {
		d = (d ^ uint64(c)) * fnvPrime
	}
	return d
}

// CaptureRun executes one workload on the DAISY machine with the default
// options, digesting the full architected state at every StepGroup
// boundary. A non-nil telemetry instance is attached to the machine (and
// synced at the end), so the same run also yields the event-stream golden.
func CaptureRun(w workload.Workload, scale int, tel *telemetry.Telemetry) (*Run, error) {
	return CaptureRunOpts(w, scale, tel, vmm.DefaultOptions())
}

// CaptureRunOpts is CaptureRun under explicit machine options: the tier-2
// equivalence wall runs the same workloads with optimizing retranslation
// pinned on and holds their guest output to the tier-1 fingerprints.
func CaptureRunOpts(w workload.Workload, scale int, tel *telemetry.Telemetry, opt vmm.Options) (*Run, error) {
	prog, err := w.Build()
	if err != nil {
		return nil, err
	}
	m := mem.New(memSize)
	if err := prog.Load(m); err != nil {
		return nil, err
	}
	env := &interp.Env{In: w.Input(scale)}
	ma, err := vmm.NewMachine(m, env, opt)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		ma.AttachTelemetry(tel)
	}

	r := &Run{Workload: w.Name, Scale: scale}
	digest := uint64(fnvOffset)
	ma.Start(prog.Entry(), 0)
	for {
		halted, err := ma.StepGroup()
		if err != nil {
			return nil, fmt.Errorf("golden: %s boundary %d: %w", w.Name, r.Boundaries, err)
		}
		r.Boundaries++
		sd := StateDigest(&ma.St)
		digest = fnvWord(digest, sd)
		if r.Boundaries%checkpointEvery == 0 {
			r.Checkpoints = append(r.Checkpoints, Checkpoint{
				Boundary: r.Boundaries,
				Digest:   fmt.Sprintf("%016x", digest),
			})
		}
		if halted {
			r.FinalDigest = fmt.Sprintf("%016x", sd)
			break
		}
	}
	ma.SyncTelemetry()
	r.StateDigest = fmt.Sprintf("%016x", digest)
	r.Insts = ma.Stats.BaseInsts()
	r.OutputLen = len(env.Out)
	r.OutputFNV = fmt.Sprintf("%016x", fnvBytes(env.Out))
	return r, nil
}

// CaptureEvents summarizes an attached telemetry instance's event stream
// after a CaptureRun.
func CaptureEvents(w workload.Workload, scale int, tel *telemetry.Telemetry, opt telemetry.Options) *Events {
	tr := tel.Tracer()
	e := &Events{
		Workload:    w.Name,
		Scale:       scale,
		SampleEvery: opt.SampleEvery,
		TraceCap:    opt.TraceCap,
	}
	if tr != nil {
		e.Events = tr.Len()
		e.Digest = fmt.Sprintf("%016x", tr.Digest())
		e.ByKind = tr.CountByKind()
	}
	return e
}

// WriteJSON writes v as indented JSON to path, creating parent directories.
func WriteJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON reads path into v.
func ReadJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
