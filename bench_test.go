package daisy

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`, ideally
// -benchtime=1x — each iteration regenerates the whole experiment).
// Key scalar outcomes are attached as custom metrics so the paper-vs-
// measured comparison in EXPERIMENTS.md can be refreshed mechanically.

import (
	"errors"
	"testing"

	"daisy/internal/analytic"
	"daisy/internal/experiments"
	"daisy/internal/interp"
	"daisy/internal/mem"
	"daisy/internal/oracle"
	"daisy/internal/stats"
	"daisy/internal/telemetry"
	"daisy/internal/txcache"
	"daisy/internal/vliw"
	"daisy/internal/vmm"
	"daisy/internal/workload"
)

const benchScale = 1

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	return experiments.NewRunner(benchScale)
}

// warm preloads a runner's memo cache across all cores; the benchmark
// body then regenerates its table from cache, so the numbers it reports
// are identical to a serial run while the wall clock reflects the
// parallel runner the tooling actually uses.
func warm(b *testing.B, r *experiments.Runner, reqs []experiments.Request) {
	b.Helper()
	if err := r.MeasureAll(reqs); err != nil {
		b.Fatal(err)
	}
}

// pageSweepReqs covers Figures 5.3-5.5 (BigConfig across every page size).
func pageSweepReqs() []experiments.Request {
	var reqs []experiments.Request
	for _, name := range experiments.Names() {
		for _, ps := range experiments.PageSizes {
			reqs = append(reqs, experiments.Request{
				Workload: name, Config: vliw.BigConfig, PageSize: ps, Hier: experiments.HierNone})
		}
	}
	return reqs
}

func hierReqs(cfg vliw.Config, h experiments.Hier) []experiments.Request {
	var reqs []experiments.Request
	for _, name := range experiments.Names() {
		reqs = append(reqs, experiments.Request{
			Workload: name, Config: cfg, PageSize: 4096, Hier: h})
	}
	return reqs
}

// BenchmarkTable51_Pathlength regenerates Table 5.1: base instructions per
// VLIW and translated page size on the 24-issue machine.
func BenchmarkTable51_Pathlength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		var ilps []float64
		for _, name := range experiments.Names() {
			m, err := r.Measure(name, vliw.BigConfig, 4096, experiments.HierNone)
			if err != nil {
				b.Fatal(err)
			}
			ilps = append(ilps, m.InfILP())
		}
		b.ReportMetric(stats.Mean(ilps), "mean-ins/VLIW")
	}
}

// BenchmarkFigure51_MachineConfigs sweeps the ten machine configurations.
func BenchmarkFigure51_MachineConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		warm(b, r, append(hierReqs(vliw.Configs[0], experiments.HierNone),
			hierReqs(vliw.BigConfig, experiments.HierNone)...))
		var small, big []float64
		for _, name := range experiments.Names() {
			ms, err := r.Measure(name, vliw.Configs[0], 4096, experiments.HierNone)
			if err != nil {
				b.Fatal(err)
			}
			mb, err := r.Measure(name, vliw.BigConfig, 4096, experiments.HierNone)
			if err != nil {
				b.Fatal(err)
			}
			small = append(small, ms.InfILP())
			big = append(big, mb.InfILP())
		}
		b.ReportMetric(stats.Mean(small), "mean-ILP-4issue")
		b.ReportMetric(stats.Mean(big), "mean-ILP-24issue")
	}
}

// BenchmarkTable52_TradCompiler compares against the traditional-compiler
// baseline.
func BenchmarkTable52_TradCompiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := runner(b).Table52()
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable53_FiniteCache measures the finite-cache haircut and the
// 604E comparison point.
func BenchmarkTable53_FiniteCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		warm(b, r, append(hierReqs(vliw.BigConfig, experiments.HierNone),
			hierReqs(vliw.BigConfig, experiments.HierA)...))
		var inf, fin []float64
		for _, name := range experiments.Names() {
			mi, err := r.Measure(name, vliw.BigConfig, 4096, experiments.HierNone)
			if err != nil {
				b.Fatal(err)
			}
			mf, err := r.Measure(name, vliw.BigConfig, 4096, experiments.HierA)
			if err != nil {
				b.Fatal(err)
			}
			inf = append(inf, mi.InfILP())
			fin = append(fin, mf.FiniteILP())
		}
		b.ReportMetric(stats.Mean(inf), "inf-ILP")
		b.ReportMetric(stats.Mean(fin), "finite-ILP")
	}
}

// BenchmarkTable54_MemChar reports memory characteristics.
func BenchmarkTable54_MemChar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner(b).Table54(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure52_MissRates reports cache miss rates.
func BenchmarkFigure52_MissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner(b).Figure52(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable55_EightIssue measures the 8-issue machine.
func BenchmarkTable55_EightIssue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		warm(b, r, hierReqs(vliw.EightIssueConfig, experiments.HierB))
		var fin []float64
		for _, name := range experiments.Names() {
			m, err := r.Measure(name, vliw.EightIssueConfig, 4096, experiments.HierB)
			if err != nil {
				b.Fatal(err)
			}
			fin = append(fin, m.FiniteILP())
		}
		b.ReportMetric(stats.Mean(fin), "finite-ILP-8issue")
	}
}

// BenchmarkTable56_CrossPage counts cross-page branches by type.
func BenchmarkTable56_CrossPage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner(b).Table56(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable57_Aliases counts runtime load-store aliases.
func BenchmarkTable57_Aliases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		var total uint64
		for _, name := range experiments.Names() {
			m, err := r.Measure(name, vliw.BigConfig, 4096, experiments.HierNone)
			if err != nil {
				b.Fatal(err)
			}
			total += m.Aliases
		}
		b.ReportMetric(float64(total), "aliases")
	}
}

// BenchmarkFigure53_ILPvsPageSize sweeps the translation page size.
func BenchmarkFigure53_ILPvsPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		warm(b, r, pageSweepReqs())
		if _, err := r.Figure53(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure54_CodeSizeVsPageSize sweeps code size.
func BenchmarkFigure54_CodeSizeVsPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		warm(b, r, pageSweepReqs())
		if _, err := r.Figure54(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure55_CrossPageVsPageSize sweeps direct cross-page jumps.
func BenchmarkFigure55_CrossPageVsPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runner(b)
		warm(b, r, pageSweepReqs())
		if _, err := r.Figure55(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable58_OverheadModel evaluates the analytic model.
func BenchmarkTable58_OverheadModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := analytic.OverheadTable(analytic.PaperParams(), 2)
		if len(rows) != 6 {
			b.Fatal("bad table")
		}
		b.ReportMetric(analytic.PaperRealisticReuse(), "breakeven-reuse")
	}
}

// BenchmarkTable59_ReuseFactors measures workload reuse factors.
func BenchmarkTable59_ReuseFactors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runner(b).Table59(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(analytic.MeanSpecReuse(), "paper-mean-reuse")
	}
}

// BenchmarkTranslationCost measures the incremental compiler's own cost:
// host time and scheduler work units per translated instruction (§5.1).
func BenchmarkTranslationCost(b *testing.B) {
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	b.ResetTimer()
	var insts, work, nanos uint64
	for i := 0; i < b.N; i++ {
		m := mem.New(experiments.MemSize)
		if err := prog.Load(m); err != nil {
			b.Fatal(err)
		}
		ma := vmm.New(m, &interp.Env{In: in}, vmm.DefaultOptions())
		if err := ma.Run(prog.Entry(), 0); err != nil {
			b.Fatal(err)
		}
		insts = ma.Trans.Stats.BaseInsts
		work = ma.Trans.Stats.WorkUnits
		nanos = ma.Trans.Stats.Nanos
	}
	b.StopTimer()
	if insts == 0 {
		b.Fatal("translator scheduled no instructions")
	}
	b.ReportMetric(float64(work)/float64(insts), "work/ins")
	b.ReportMetric(float64(nanos)/float64(insts), "ns/base-inst")
}

// BenchmarkColdStart measures end-to-end time-to-completion — translation
// stalls included — of the translate-heaviest workload (gcc) under the
// four translation-pipeline modes, and reports the ISSUE 4 acceptance
// number: the async+warm-cache reduction against synchronous cold
// translation. Each mode is re-run several times inside one iteration and
// the minimum wall time kept, so the reported metrics are stable even
// under `-benchtime=1x` (how `make bench` snapshots them).
func BenchmarkColdStart(b *testing.B) {
	const (
		name = "gcc"
		reps = 16
	)
	for i := 0; i < b.N; i++ {
		store := txcache.OpenMemory()
		if err := experiments.PrimeCache(name, benchScale, store); err != nil {
			b.Fatal(err)
		}
		ms, err := experiments.MeasurePipelineSet(name, benchScale, experiments.PipelineModes(), store, reps)
		if err != nil {
			b.Fatal(err)
		}
		base := ms[experiments.ModeSync]
		for _, mode := range experiments.PipelineModes()[1:] {
			if ms[mode].OutputFNV != base.OutputFNV {
				b.Fatalf("%s output diverged from sync", mode)
			}
		}
		b.ReportMetric(float64(base.Wall.Microseconds())/1000, "sync-cold-ms")
		b.ReportMetric(float64(ms[experiments.ModeAsync].Wall.Microseconds())/1000, "async-cold-ms")
		b.ReportMetric(float64(ms[experiments.ModeSyncWarm].Wall.Microseconds())/1000, "sync-warm-ms")
		b.ReportMetric(float64(ms[experiments.ModeAsyncWarm].Wall.Microseconds())/1000, "async-warm-ms")
		b.ReportMetric(100*(1-float64(ms[experiments.ModeAsyncWarm].Wall)/float64(base.Wall)),
			"warm-reduction-%")
		b.ReportMetric(float64(ms[experiments.ModeAsyncWarm].CacheHits), "warm-hits")
	}
}

// BenchmarkFleetColdStart measures the AOT acceptance scenario: a fleet
// of 8 machines brought up over one shared on-disk translation cache,
// running the translate-heaviest workload (gcc). The baseline is the
// ISSUE 4 configuration (async pipeline + warm shared cache, hot tier
// disabled, cold first machine included); the AOT configuration
// pre-translates the whole binary in one parallel pass and serves repeat
// loads from the store's decoded hot tier. Reported: both aggregate
// times, the pass cost, per-tier byte traffic, and the reduction (the
// acceptance bar is >=25%). The hot-tier invariant — after the first
// decode of a key, no further disk reads for it — is asserted, not just
// reported.
func BenchmarkFleetColdStart(b *testing.B) {
	const name = "gcc"
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		f, err := experiments.MeasureFleet(name, benchScale, experiments.FleetMachines, dir, experiments.FleetReps)
		if err != nil {
			b.Fatal(err)
		}
		// Every load past the first decode of a key must be absorbed by
		// the hot tier. Machine 1 may rewrite precompiled pages with
		// execution-discovered entry points (invalidating their hot
		// copies) and machine 2 re-decodes those once; from machine 3 on,
		// zero disk reads.
		if f.AotLateDecodes != 0 {
			b.Fatalf("hot tier leaked to disk after the fleet settled: %d late decodes (%d total, %d stored pages)",
				f.AotLateDecodes, f.AotDecodes, f.Stored)
		}
		if f.AotHotHits == 0 {
			b.Fatal("fleet never hit the hot tier")
		}
		b.ReportMetric(float64(f.Baseline.Microseconds())/1000, "base-fleet-ms")
		b.ReportMetric(float64(f.Aot.Microseconds())/1000, "aot-fleet-ms")
		b.ReportMetric(float64(f.PrecompileWall.Microseconds())/1000, "precompile-ms")
		b.ReportMetric(float64(f.BaselineDiskBytes)/1024, "base-disk-KB")
		b.ReportMetric(float64(f.AotDiskBytes)/1024, "aot-disk-KB")
		b.ReportMetric(float64(f.AotHotBytes)/1024, "aot-hot-KB")
		b.ReportMetric(float64(f.AotHotHits), "hot-hits")
		b.ReportMetric(f.Reduction(), "fleet-reduction-%")
	}
}

// BenchmarkOracle_ILP measures Chapter 6's oracle parallelism.
func BenchmarkOracle_ILP(b *testing.B) {
	w, _ := workload.ByName("c_sieve")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	for i := 0; i < b.N; i++ {
		r, err := oracle.Measure(prog, in, oracle.Limits{}, experiments.MemSize)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ILP, "oracle-ILP")
	}
}

// BenchmarkAblation_NoReturnInline measures the return-inlining ablation
// DESIGN.md calls out.
func BenchmarkAblation_NoReturnInline(b *testing.B) {
	w, _ := workload.ByName("gcc")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	for i := 0; i < b.N; i++ {
		for _, inline := range []bool{true, false} {
			m := mem.New(experiments.MemSize)
			if err := prog.Load(m); err != nil {
				b.Fatal(err)
			}
			opt := vmm.DefaultOptions()
			opt.Trans.InlineReturns = inline
			ma := vmm.New(m, &interp.Env{In: in}, opt)
			if err := ma.Run(prog.Entry(), 0); err != nil {
				b.Fatal(err)
			}
			if inline {
				b.ReportMetric(ma.Stats.InfILP(), "ILP-inline")
			} else {
				b.ReportMetric(ma.Stats.InfILP(), "ILP-noinline")
			}
		}
	}
}

// BenchmarkInterpretiveCompilation compares Chapter 6's trace-guided mode
// with static translation.
func BenchmarkInterpretiveCompilation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := runner(b).InterpretiveTable()
		if err != nil {
			b.Fatal(err)
		}
		if t.Rows() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkExecutorThroughput measures raw simulated-VLIW execution rate.
func BenchmarkExecutorThroughput(b *testing.B) {
	w, _ := workload.ByName("c_sieve")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mem.New(experiments.MemSize)
		_ = prog.Load(m)
		ma := vmm.New(m, &interp.Env{In: in}, vmm.DefaultOptions())
		if err := ma.Run(prog.Entry(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorThroughputTelemetry runs the same workload with the
// telemetry subsystem attached at the default 1-in-64 dispatch sampling
// rate. The acceptance bar (EXPERIMENTS.md) is ≤10% over the bare
// BenchmarkExecutorThroughput; a machine with no telemetry attached must
// stay within 1% of it.
func BenchmarkExecutorThroughputTelemetry(b *testing.B) {
	w, _ := workload.ByName("c_sieve")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mem.New(experiments.MemSize)
		_ = prog.Load(m)
		ma := vmm.New(m, &interp.Env{In: in}, vmm.DefaultOptions())
		ma.AttachTelemetry(telemetry.New(telemetry.DefaultOptions()))
		if err := ma.Run(prog.Entry(), 0); err != nil {
			b.Fatal(err)
		}
		ma.SyncTelemetry()
	}
}

// BenchmarkExecutorThroughputProfiled adds the guest attribution profiler
// on top of the attached-telemetry configuration, still at 1-in-64
// sampling: the scan-walk replay runs on the sampled dispatches only, so
// the cost must stay within noise of the plain telemetry variant
// (EXPERIMENTS.md cost-model row).
func BenchmarkExecutorThroughputProfiled(b *testing.B) {
	w, _ := workload.ByName("c_sieve")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mem.New(experiments.MemSize)
		_ = prog.Load(m)
		ma := vmm.New(m, &interp.Env{In: in}, vmm.DefaultOptions())
		opt := telemetry.DefaultOptions()
		opt.Profile = true
		ma.AttachTelemetry(telemetry.New(opt))
		if err := ma.Run(prog.Entry(), 0); err != nil {
			b.Fatal(err)
		}
		ma.SyncTelemetry()
		if ma.Telemetry().Profile().TotalCycles() == 0 {
			b.Fatal("profiler attributed nothing")
		}
	}
}

// BenchmarkTier2 measures the ISSUE 8 acceptance number: optimizing
// retranslation (tier-2 superblocks along the measured hot path, deferred
// commits, dead-commit elimination) against plain tier-1 chaining, as
// dispatch cycles per base instruction (VLIWs/inst — the unit-latency
// machine retires one VLIW per cycle). Each workload runs both ways with
// identical inputs; outputs are cross-checked and tier-2 must actually
// dispatch, so the reported reduction is never a silently-degraded run.
func BenchmarkTier2(b *testing.B) {
	names := []string{"c_sieve", "wc", "lex", "compress"}
	run := func(name string, tier2 bool) (*vmm.Machine, []byte) {
		w, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := w.Build()
		if err != nil {
			b.Fatal(err)
		}
		m := mem.New(experiments.MemSize)
		if err := prog.Load(m); err != nil {
			b.Fatal(err)
		}
		env := &interp.Env{In: w.Input(benchScale)}
		opt := vmm.DefaultOptions()
		opt.Tier2 = tier2
		opt.Tier2Threshold = 2
		ma := vmm.New(m, env, opt)
		if err := ma.Run(prog.Entry(), 0); err != nil {
			b.Fatal(err)
		}
		return ma, env.Out
	}
	for i := 0; i < b.N; i++ {
		var c1, c2, insts float64
		for _, name := range names {
			m1, out1 := run(name, false)
			m2, out2 := run(name, true)
			if string(out1) != string(out2) {
				b.Fatalf("%s: tier-2 output diverged", name)
			}
			if m2.Stats.Tier2Dispatches == 0 {
				b.Fatalf("%s: tier-2 never dispatched", name)
			}
			c1 += float64(m1.Stats.Exec.VLIWs)
			c2 += float64(m2.Stats.Exec.VLIWs)
			insts += float64(m1.Stats.BaseInsts())
		}
		b.ReportMetric(c1/insts, "t1-cycles/inst")
		b.ReportMetric(c2/insts, "t2-cycles/inst")
		b.ReportMetric(100*(1-c2/c1), "t2-reduction-%")
	}
}

// BenchmarkInterpreterThroughput is the reference point for the executor.
func BenchmarkInterpreterThroughput(b *testing.B) {
	w, _ := workload.ByName("c_sieve")
	prog, err := w.Build()
	if err != nil {
		b.Fatal(err)
	}
	in := w.Input(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mem.New(experiments.MemSize)
		_ = prog.Load(m)
		ip := interp.New(m, &interp.Env{In: in}, prog.Entry())
		if err := ip.Run(0); !errors.Is(err, interp.ErrHalt) {
			b.Fatal(err)
		}
	}
}
