package daisy

import (
	"errors"
	"testing"
)

// TestPublicAPI exercises the facade end to end the way the README's
// quickstart does.
func TestPublicAPI(t *testing.T) {
	prog, err := Assemble(`
_start:	li r3, 0
	li r4, 10
	mtctr r4
loop:	addi r3, r3, 5
	bdnz loop
	li r0, 0
	sc
`)
	if err != nil {
		t.Fatal(err)
	}

	m := NewMemory(1 << 20)
	if err := prog.Load(m); err != nil {
		t.Fatal(err)
	}
	env := &Env{}
	machine, err := NewMachine(m, env, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.Run(prog.Entry(), 0); err != nil {
		t.Fatal(err)
	}
	if machine.St.GPR[3] != 50 {
		t.Fatalf("r3 = %d", machine.St.GPR[3])
	}

	m2 := NewMemory(1 << 20)
	_ = prog.Load(m2)
	ip := NewInterpreter(m2, &Env{}, prog.Entry())
	if err := ip.Run(0); !errors.Is(err, ErrHalt) {
		t.Fatal(err)
	}
	if ip.InstCount != machine.Stats.BaseInsts() {
		t.Fatal("engines disagree")
	}
}

func TestPublicTranslate(t *testing.T) {
	prog, err := Assemble("_start:\tadd r3, r4, r5\n\tli r0, 0\n\tsc\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemory(1 << 16)
	_ = prog.Load(m)
	g, err := Translate(m, DefaultTranslatorOptions(), prog.Entry())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.VLIWs) == 0 || g.Dump() == "" {
		t.Fatal("no VLIWs produced")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(Workloads()) != 8 {
		t.Fatalf("expected the paper's 8 benchmarks, got %d", len(Workloads()))
	}
	w, err := WorkloadByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Input(1)) == 0 || len(w.Model(w.Input(1))) == 0 {
		t.Fatal("workload input/model broken")
	}
	if len(Configs) != 10 || BigConfig.Issue != 24 || EightIssueConfig.Issue != 8 {
		t.Fatal("machine configurations")
	}
}

func TestPublicChaos(t *testing.T) {
	w, err := WorkloadByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := ChaosInjectorByName("smc-storm")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunChaos(ChaosScenario{Workload: w, Seed: 1, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergence != nil {
		t.Fatalf("lockstep diverged: %v", rep.Divergence)
	}
	if !rep.Halted {
		t.Fatal("workload did not halt")
	}
	if len(ChaosInjectors()) != 15 {
		t.Fatalf("expected 15 injectors, got %d", len(ChaosInjectors()))
	}
}

// TestPublicPrecompile exercises the README's fleet warm-up flow: AOT
// pre-translate a workload into a cache, then boot a machine over it and
// check the run is served warm.
func TestPublicPrecompile(t *testing.T) {
	w, err := WorkloadByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenTranslationCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Cache = cache

	m := NewMemory(8 << 20)
	if err := prog.Load(m); err != nil {
		t.Fatal(err)
	}
	pma, err := NewMachine(m, &Env{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer pma.Close()
	rep, err := Precompile(pma, prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stored == 0 || rep.String() == "" {
		t.Fatalf("precompile stored nothing: %v", rep)
	}

	m2 := NewMemory(8 << 20)
	if err := prog.Load(m2); err != nil {
		t.Fatal(err)
	}
	env := &Env{In: w.Input(1)}
	ma, err := NewMachine(m2, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	if err := ma.Run(prog.Entry(), 100_000_000); err != nil {
		t.Fatal(err)
	}
	if ma.Stats.CacheHits == 0 {
		t.Fatal("precompiled machine never hit the cache")
	}
	if string(env.Out) != string(w.Model(w.Input(1))) {
		t.Fatal("precompiled run output disagrees with the workload model")
	}
}
