// daisy-paper is the one-command reproduction of the paper's evaluation:
// it runs the full experiment grid (every table and figure, the pipeline,
// fleet cold-start and tier-2 wall-clock studies), a chaos-matrix
// compatibility summary and a profiler smoke run, and archives everything
// into a timestamped run folder with a machine-readable manifest — git
// SHA, go version, CPU model, per-experiment wall time — plus raw per-rep
// samples, each table rendered as text, CSV and markdown, and an output
// cross-check against the reference interpreter (and the committed
// goldens at scale 1), so one perf run doubles as a correctness run.
//
// Usage:
//
//	daisy-paper                       # full grid at scale 1 into runs/<stamp>/
//	daisy-paper -scale 3 -out /tmp/r  # bigger inputs, explicit folder
//	daisy-paper -only t51,pipeline    # a slice of the grid
//	daisy-paper -plot                 # also render per-series SVG sparklines
//
// The process exits nonzero if any experiment fails, any output digest
// diverges, the chaos matrix reports a divergence, the profiler payload
// does not validate, or the finished folder fails integrity validation —
// a green daisy-paper run is a correctness statement, not just numbers.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"daisy/internal/chaos"
	"daisy/internal/experiments"
	"daisy/internal/golden"
	"daisy/internal/interp"
	"daisy/internal/mem"
	"daisy/internal/perfwall"
	"daisy/internal/stats"
	"daisy/internal/telemetry"
	"daisy/internal/vmm"
	"daisy/internal/workload"
)

func main() {
	var (
		scale      = flag.Int("scale", 1, "workload input scale")
		only       = flag.String("only", "", "comma-separated experiment ids (empty: full grid)")
		out        = flag.String("out", "runs", "base directory for run folders")
		name       = flag.String("name", "", "run folder name (default: UTC timestamp)")
		reps       = flag.Int("reps", 0, "pipeline reps per mode (0: package default)")
		fleetReps  = flag.Int("fleet-reps", 0, "fleet cold-start reps (0: package default)")
		machines   = flag.Int("machines", 0, "fleet size (0: package default)")
		chaosSeeds = flag.Int("chaos-seeds", 1, "seeds per chaos workload/injector cell (0: skip the matrix)")
		plot       = flag.Bool("plot", false, "render per-series SVG sparklines into plots/")
		goldens    = flag.String("goldens", "internal/golden/testdata/golden",
			"golden dir for the scale-1 digest cross-check (empty: skip)")
		noProfile = flag.Bool("no-profile", false, "skip the profiler smoke run")
	)
	flag.Parse()
	if err := run(*scale, *only, *out, *name, *reps, *fleetReps, *machines,
		*chaosSeeds, *plot, *goldens, *noProfile); err != nil {
		fmt.Fprintln(os.Stderr, "daisy-paper:", err)
		os.Exit(1)
	}
}

func run(scale int, only, out, name string, reps, fleetReps, machines,
	chaosSeeds int, plot bool, goldens string, noProfile bool) error {

	start := time.Now()
	m := perfwall.CollectManifest("daisy-paper")
	if name == "" {
		name = time.Now().UTC().Format("20060102-150405")
	}
	dir := filepath.Join(out, name)
	rf, err := perfwall.NewRunFolder(dir, m, scale, os.Args[1:])
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[daisy-paper] run folder: %s\n", dir)

	r := experiments.NewRunner(scale)
	if reps > 0 {
		r.PipelineReps = reps
	}
	if fleetReps > 0 {
		r.FleetReps = fleetReps
	}
	if machines > 0 {
		r.FleetMachines = machines
	}

	sel := map[string]bool{}
	for _, s := range strings.Split(only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[s] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	// One failure does not abort the run: the folder archives everything
	// that did complete, and the collected failures decide the exit code.
	var failures []string
	fail := func(format string, a ...any) {
		msg := fmt.Sprintf(format, a...)
		failures = append(failures, msg)
		fmt.Fprintf(os.Stderr, "[daisy-paper] FAIL: %s\n", msg)
	}

	// The experiment grid. Full-grid runs warm the memo cache across all
	// cores first, exactly like daisy-experiments, so table generation
	// replays cached measurements and the per-experiment wall times mostly
	// charge the wall-clock studies (pipeline, aot, tier2).
	if len(sel) == 0 {
		if err := r.MeasureAll(experiments.SuiteRequests()); err != nil {
			return err
		}
	}
	for _, e := range experiments.Experiments() {
		if !want(e.ID) {
			continue
		}
		t0 := time.Now()
		t, err := e.Run(r)
		wallMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			fail("experiment %s: %v", e.ID, err)
			continue
		}
		if err := rf.AddTable(e.ID, t, wallMS); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[daisy-paper] %-8s %8.1f ms  %s\n", e.ID, wallMS, t.Title)
	}

	// Output cross-check: every workload through the full machine against
	// the reference interpreter at this scale, and against the committed
	// goldens at scale 1. This is what makes a perf run double as a
	// correctness run — a digest mismatch fails the whole invocation.
	if t, bad := crossCheck(scale, goldens); t != nil {
		if err := rf.AddTable("crosscheck", t, 0); err != nil {
			return err
		}
		if bad > 0 {
			fail("output cross-check: %d mismatches (see tables/crosscheck.md)", bad)
		}
	}

	// Chaos summary: the injector matrix, one row per injector across all
	// workloads. Any divergence is a compatibility break.
	if chaosSeeds > 0 {
		t0 := time.Now()
		t, div, err := chaosSummary(scale, chaosSeeds)
		if err != nil {
			fail("chaos matrix: %v", err)
		} else {
			if err := rf.AddTable("chaos", t, float64(time.Since(t0).Microseconds())/1000); err != nil {
				return err
			}
			if div > 0 {
				fail("chaos matrix: %d divergences", div)
			}
		}
	}

	// Profiler smoke: one attributed run, the pprof payload validated and
	// archived together with the telemetry snapshot (JSON + Prometheus).
	if !noProfile {
		if err := profileSmoke(rf, scale); err != nil {
			fail("profiler smoke: %v", err)
		}
	}

	// Raw per-rep distributions behind every reported minimum.
	var series []perfwall.SampleSeries
	for _, s := range r.SampleLog() {
		series = append(series, perfwall.SampleSeries{Name: s.Name, Unit: s.Unit, Values: s.Values})
	}
	if err := rf.WriteSamples(series); err != nil {
		return err
	}
	if plot {
		for _, s := range series {
			labels := make([]string, len(s.Values))
			for i := range labels {
				labels[i] = fmt.Sprintf("r%d", i+1)
			}
			svg := perfwall.Sparkline(s.Name+" ("+s.Unit+")", labels, s.Values, 640, 180)
			if err := rf.WriteFile(filepath.Join("plots", plotName(s.Name)+".svg"), svg); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "[daisy-paper] %d sparklines in %s\n", len(series), filepath.Join(dir, "plots"))
	}

	if err := rf.Finish(); err != nil {
		return err
	}
	if err := perfwall.Validate(dir); err != nil {
		fail("run folder validation: %v", err)
	}
	fmt.Fprintf(os.Stderr, "[daisy-paper] done in %.1fs: %s\n", time.Since(start).Seconds(), dir)
	if len(failures) > 0 {
		return fmt.Errorf("%d failures:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// crossCheck runs every workload on the machine and the reference
// interpreter and compares output digests; at scale 1 it also checks the
// committed golden digest. Returns the table and the mismatch count.
func crossCheck(scale int, goldens string) (*stats.Table, int) {
	t := stats.NewTable(
		fmt.Sprintf("Output cross-check: machine vs reference interpreter (scale %d)", scale),
		"Program", "machine fnv", "reference fnv", "golden fnv", "status")
	bad := 0
	for _, name := range experiments.Names() {
		mFNV, rFNV, err := machineAndRefFNV(name, scale)
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
			bad++
			t.Row(name, "", "", "", status)
			continue
		}
		gold := ""
		if goldens != "" && scale == 1 {
			var g golden.Run
			if err := golden.ReadJSON(filepath.Join(goldens, name+".json"), &g); err == nil {
				gold = g.OutputFNV
				if gold != fmt.Sprintf("%016x", mFNV) {
					status = "GOLDEN MISMATCH"
				}
			}
		}
		if mFNV != rFNV {
			status = "REFERENCE MISMATCH"
		}
		if status != "ok" {
			bad++
		}
		t.Row(name, fmt.Sprintf("%016x", mFNV), fmt.Sprintf("%016x", rFNV), gold, status)
	}
	return t, bad
}

func machineAndRefFNV(name string, scale int) (machine, ref uint64, err error) {
	w, err := workload.ByName(name)
	if err != nil {
		return 0, 0, err
	}
	prog, err := w.Build()
	if err != nil {
		return 0, 0, err
	}

	mm := mem.New(experiments.MemSize)
	if err := prog.Load(mm); err != nil {
		return 0, 0, err
	}
	env := &interp.Env{In: w.Input(scale)}
	ma := vmm.New(mm, env, vmm.DefaultOptions())
	defer ma.Close()
	if err := ma.Run(prog.Entry(), 4_000_000_000); err != nil {
		return 0, 0, fmt.Errorf("machine: %w", err)
	}
	machine = experiments.OutputFNV(env.Out)

	rmm := mem.New(experiments.MemSize)
	if err := prog.Load(rmm); err != nil {
		return 0, 0, err
	}
	renv := &interp.Env{In: w.Input(scale)}
	ip := interp.New(rmm, renv, prog.Entry())
	if err := ip.Run(0); !errors.Is(err, interp.ErrHalt) {
		return 0, 0, fmt.Errorf("reference: %v", err)
	}
	return machine, experiments.OutputFNV(renv.Out), nil
}

// chaosSummary runs the full workload x injector matrix for seeds seeds
// each, under lockstep validation, and reports one row per injector.
func chaosSummary(scale, seeds int) (*stats.Table, int, error) {
	t := stats.NewTable(
		fmt.Sprintf("Chaos matrix: lockstep compatibility under fault injection (scale %d, %d seed(s))", scale, seeds),
		"Injector", "runs", "halted", "truncated", "divergences")
	divTotal := 0
	for _, inj := range chaos.Injectors() {
		runs, halted, truncated, divs := 0, 0, 0, 0
		for _, w := range workload.All() {
			for seed := 1; seed <= seeds; seed++ {
				rep, err := chaos.Run(chaos.Scenario{
					Workload: w,
					Scale:    scale,
					Seed:     int64(seed),
					Injector: inj,
				})
				if err != nil {
					return nil, 0, fmt.Errorf("%s/%s seed %d: %w", w.Name, inj.Name(), seed, err)
				}
				runs++
				if rep.Halted {
					halted++
				}
				if rep.Truncated {
					truncated++
				}
				if rep.Divergence != nil {
					divs++
					fmt.Fprintf(os.Stderr, "[daisy-paper] chaos divergence %s/%s seed %d: %s\n",
						w.Name, inj.Name(), seed, rep.Divergence)
				}
			}
		}
		divTotal += divs
		t.Row(inj.Name(), runs, halted, truncated, divs)
	}
	return t, divTotal, nil
}

// profileSmoke runs one workload with the attribution profiler attached,
// validates the pprof payload, and archives it with the telemetry
// snapshot in both JSON and Prometheus form.
func profileSmoke(rf *perfwall.RunFolder, scale int) error {
	w, err := workload.ByName("c_sieve")
	if err != nil {
		return err
	}
	prog, err := w.Build()
	if err != nil {
		return err
	}
	mm := mem.New(experiments.MemSize)
	if err := prog.Load(mm); err != nil {
		return err
	}
	env := &interp.Env{In: w.Input(scale)}
	ma := vmm.New(mm, env, vmm.DefaultOptions())
	defer ma.Close()
	tel := telemetry.New(telemetry.Options{SampleEvery: 1, Profile: true})
	ma.AttachTelemetry(tel)
	if err := ma.Run(prog.Entry(), 4_000_000_000); err != nil {
		return err
	}
	ma.SyncTelemetry()

	var pprof strings.Builder
	if err := tel.Profile().WritePprof(&pprof); err != nil {
		return err
	}
	sum, err := telemetry.ValidatePprof(strings.NewReader(pprof.String()))
	if err != nil {
		return fmt.Errorf("pprof payload invalid: %w", err)
	}
	if err := rf.WriteFile(filepath.Join("profile", "c_sieve.pb"), []byte(pprof.String())); err != nil {
		return err
	}
	if err := tel.Snapshot().WriteFiles(filepath.Join(rf.Dir, "profile")); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[daisy-paper] profiler smoke ok: %s\n", sum)
	return nil
}

func plotName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
