// Package obs is the shared observability flag plumbing for the daisy
// command-line tools: one -telemetry switch plus exporter/profiling flags,
// so daisy-run, daisy-chaos, daisy-experiments and daisy-top expose the
// same surface.
package obs

import (
	"flag"
	"fmt"
	"os"
	"time"

	"daisy/internal/telemetry"
)

// Flags holds the registered observability flags.
type Flags struct {
	Telemetry     bool
	Sample        int
	TraceCap      int
	PromFile      string
	JSONLFile     string
	ChromeFile    string
	ProfileFile   string
	Spans         bool
	Top           bool
	CPUProfile    string
	MemProfile    string
	SnapshotEvery time.Duration
}

// Register installs the flags on the default flag set.
func Register() *Flags {
	f := &Flags{}
	def := telemetry.DefaultOptions()
	flag.BoolVar(&f.Telemetry, "telemetry", false, "attach the telemetry layer (metrics + event trace)")
	flag.IntVar(&f.Sample, "sample", def.SampleEvery, "telemetry: sample 1 in N dispatches")
	flag.IntVar(&f.TraceCap, "trace-cap", def.TraceCap, "telemetry: event ring capacity (0 disables tracing)")
	flag.StringVar(&f.PromFile, "prom", "", "telemetry: write Prometheus text metrics to FILE at exit")
	flag.StringVar(&f.JSONLFile, "trace-jsonl", "", "telemetry: write the event trace as JSONL to FILE at exit")
	flag.StringVar(&f.ChromeFile, "trace-chrome", "", "telemetry: write a Chrome trace_event file to FILE at exit")
	flag.StringVar(&f.ProfileFile, "profile", "", "telemetry: write a guest pprof profile (base-PC attribution) to FILE at exit")
	flag.BoolVar(&f.Spans, "spans", false, "telemetry: trace page-lifecycle spans (begin/end events + latency histograms)")
	flag.BoolVar(&f.Top, "top", false, "telemetry: print a daisy-top screen to stderr at exit")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to FILE")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to FILE at exit")
	flag.DurationVar(&f.SnapshotEvery, "snapshot-every", 0, "telemetry: print a snapshot line to stderr every interval")
	return f
}

// Enabled reports whether any flag implies a telemetry instance.
func (f *Flags) Enabled() bool {
	return f.Telemetry || f.PromFile != "" || f.JSONLFile != "" ||
		f.ChromeFile != "" || f.ProfileFile != "" || f.Spans ||
		f.Top || f.SnapshotEvery > 0
}

// Setup builds the telemetry instance (nil if not enabled) and starts
// profiling / periodic snapshots. The returned finish func stops them and
// writes every requested export; call it exactly once, after the run.
func (f *Flags) Setup() (tel *telemetry.Telemetry, finish func() error, err error) {
	var stops []func()
	if f.CPUProfile != "" {
		stop, err := telemetry.StartCPUProfile(f.CPUProfile)
		if err != nil {
			return nil, nil, err
		}
		stops = append(stops, stop)
	}
	if f.Enabled() {
		tel = telemetry.New(telemetry.Options{
			SampleEvery: f.Sample,
			TraceCap:    f.TraceCap,
			Profile:     f.ProfileFile != "",
			Spans:       f.Spans,
		})
		if f.SnapshotEvery > 0 {
			stops = append(stops, telemetry.PeriodicSnapshots(tel, os.Stderr, f.SnapshotEvery))
		}
	}
	start := time.Now()
	finish = func() error {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		if f.MemProfile != "" {
			if err := telemetry.WriteHeapProfile(f.MemProfile); err != nil {
				return err
			}
		}
		if tel == nil {
			return nil
		}
		if f.Top {
			fmt.Fprint(os.Stderr, telemetry.RenderTop(tel.Snapshot(), time.Since(start), telemetry.TopOptions{}))
		}
		if f.PromFile != "" {
			if err := writeFile(f.PromFile, func(w *os.File) error {
				return tel.Snapshot().WritePrometheus(w)
			}); err != nil {
				return err
			}
		}
		if f.ProfileFile != "" {
			if prof := tel.Profile(); prof != nil {
				if err := writeFile(f.ProfileFile, func(w *os.File) error {
					return prof.WritePprof(w)
				}); err != nil {
					return err
				}
			}
		}
		tr := tel.Tracer()
		if f.JSONLFile != "" && tr != nil {
			if err := writeFile(f.JSONLFile, func(w *os.File) error { return tr.WriteJSONL(w) }); err != nil {
				return err
			}
		}
		if f.ChromeFile != "" && tr != nil {
			if err := writeFile(f.ChromeFile, func(w *os.File) error { return tr.WriteChromeTrace(w) }); err != nil {
				return err
			}
		}
		return nil
	}
	return tel, finish, nil
}

func writeFile(path string, fn func(*os.File) error) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
