// daisy-chaos runs the fault-injection / lockstep-validation harness from
// the command line: every run executes a workload simultaneously on the
// DAISY machine and on the reference interpreter, with a seeded injector
// disturbing the machine's translation machinery, and fails loudly if the
// two ever disagree on architected state, memory or output.
//
// Because injections are a deterministic function of (workload, injector,
// seed), any failing combination a test run reports can be replayed here
// exactly, with the divergence bisected to the base instruction that
// produced the wrong value and the offending translated group dumped.
//
// Usage:
//
//	daisy-chaos                          # full matrix, seeds 1..4
//	daisy-chaos -workload wc             # one workload, all injectors
//	daisy-chaos -injector smc-storm      # one injector, all workloads
//	daisy-chaos -workload wc -injector mem-fault -seed 17 -v   # replay one run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daisy/cmd/internal/obs"
	"daisy/internal/chaos"
	"daisy/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "all", "workload name, or \"all\"")
		injName  = flag.String("injector", "all", "injector name, \"none\", or \"all\"")
		seed     = flag.Int64("seed", 1, "first injector seed")
		seeds    = flag.Int("seeds", 4, "number of consecutive seeds per combination")
		scale    = flag.Int("scale", 1, "workload input scale")
		maxInsts = flag.Uint64("max", 0, "instruction budget per run (0: default)")
		verbose  = flag.Bool("v", false, "print the offending group on divergence")
	)
	ob := obs.Register()
	flag.Parse()
	tel, finish, err := ob.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "daisy-chaos:", err)
		os.Exit(1)
	}

	names := func() []string {
		var n []string
		for _, in := range chaos.Injectors() {
			n = append(n, in.Name())
		}
		return n
	}
	var wls []workload.Workload
	if *wlName == "all" {
		wls = workload.All()
	} else {
		w, err := workload.ByName(*wlName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "daisy-chaos:", err)
			os.Exit(2)
		}
		wls = []workload.Workload{w}
	}
	var injs []chaos.Injector
	if *injName == "all" {
		injs = append([]chaos.Injector{nil}, chaos.Injectors()...)
	} else {
		in, err := chaos.ByName(*injName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "daisy-chaos: %v (have: none, %s)\n", err, strings.Join(names(), ", "))
			os.Exit(2)
		}
		injs = []chaos.Injector{in}
	}

	failures := 0
	for _, w := range wls {
		for _, inj := range injs {
			injLabel := "none"
			nSeeds := 1 // an uninjected run is seed-independent
			if inj != nil {
				injLabel = inj.Name()
				nSeeds = *seeds
			}
			for s := *seed; s < *seed+int64(nSeeds); s++ {
				rep, err := chaos.Run(chaos.Scenario{
					Workload:  w,
					Scale:     *scale,
					Seed:      s,
					Injector:  inj,
					MaxInsts:  *maxInsts,
					Telemetry: tel,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "daisy-chaos: %s/%s seed %d: %v\n", w.Name, injLabel, s, err)
					os.Exit(1)
				}
				status := "ok"
				switch {
				case rep.Divergence != nil:
					status = "DIVERGED"
					failures++
				case rep.Truncated:
					status = "ok (truncated)"
				}
				fmt.Printf("%-10s %-14s seed=%-3d %9d insts  injected=%-4d quarantines=%d/%d  %s\n",
					w.Name, injLabel, s, rep.Insts, rep.Stats.InjectedFaults,
					rep.Stats.Quarantines, rep.Stats.QuarantineReleases, status)
				if d := rep.Divergence; d != nil {
					fmt.Printf("  %s\n", d)
					if *verbose && d.GroupDump != "" {
						fmt.Println(indent(d.GroupDump, "  | "))
					}
				}
			}
		}
	}
	if err := finish(); err != nil {
		fmt.Fprintln(os.Stderr, "daisy-chaos:", err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "daisy-chaos: %d divergence(s) — architectural compatibility violated\n", failures)
		os.Exit(1)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
