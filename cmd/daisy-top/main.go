// daisy-top runs a workload on the DAISY machine with telemetry attached
// and renders a live "top"-style screen: hot pages, hottest groups, the
// translation-vs-execution time split, and the headline counters — the
// observability the paper's evaluation chapters assume but end-of-run
// Stats cannot provide.
//
// Usage:
//
//	daisy-top -workload c_sieve               # live screen until the run ends
//	daisy-top -workload wc -interval 250ms    # faster refresh
//	daisy-top -workload lex -once             # no live screen, final render only
//
// The final screen is always printed to stdout when the run completes; the
// live refresh (stderr, ANSI clear) can be disabled with -once for use in
// pipes and tests.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"daisy"
	"daisy/internal/telemetry"
	"daisy/internal/vliw"
)

func main() {
	var (
		wlName     = flag.String("workload", "c_sieve", "workload to run (see daisy-run -workload)")
		scale      = flag.Int("scale", 1, "workload input scale")
		configName = flag.String("config", "24-16-8-7", "machine configuration")
		sample     = flag.Int("sample", 64, "sample 1 in N dispatches")
		interval   = flag.Duration("interval", time.Second, "live refresh interval")
		once       = flag.Bool("once", false, "skip the live screen; print only the final render")
		rows       = flag.Int("rows", 10, "hot-page / hot-group rows")
		maxInsts   = flag.Uint64("max", 0, "instruction budget (0 = unlimited)")
		async      = flag.Bool("async", false, "translate asynchronously (adds the pipeline pane)")
		cacheDir   = flag.String("txcache", "", "persistent translation cache directory (created if missing)")
		profile    = flag.Bool("profile", false, "attribute guest cycles to base PCs; append the flat report")
		tier2      = flag.Bool("tier2", false, "retranslate hot stable pages at tier-2 effort (adds the tier pane)")
		tier2Thr   = flag.Int("tier2-threshold", 0, "dispatches before a page is tier-2 eligible (0: default 8)")
	)
	flag.Parse()
	if err := run(*wlName, *scale, *configName, *sample, *interval, *once, *rows, *maxInsts,
		*async, *cacheDir, *profile, *tier2, *tier2Thr); err != nil {
		fmt.Fprintln(os.Stderr, "daisy-top:", err)
		os.Exit(1)
	}
}

func run(wlName string, scale int, configName string, sample int,
	interval time.Duration, once bool, rows int, maxInsts uint64,
	async bool, cacheDir string, profile bool, tier2 bool, tier2Thr int) error {

	cfg, err := vliw.ConfigByName(configName)
	if err != nil {
		return err
	}
	w, err := daisy.WorkloadByName(wlName)
	if err != nil {
		return err
	}
	prog, err := w.Build()
	if err != nil {
		return err
	}

	m := daisy.NewMemory(8 << 20)
	if err := prog.Load(m); err != nil {
		return err
	}
	opt := daisy.DefaultOptions()
	opt.Trans.Config = cfg
	opt.AsyncTranslate = async
	opt.Tier2 = tier2
	opt.Tier2Threshold = tier2Thr
	if cacheDir != "" {
		cache, err := daisy.OpenTranslationCache(cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = cache
	}
	ma, err := daisy.NewMachine(m, &daisy.Env{In: w.Input(scale)}, opt)
	if err != nil {
		return err
	}
	defer ma.Close()

	tel := daisy.NewTelemetry(daisy.TelemetryOptions{SampleEvery: sample, TraceCap: 1 << 16, Profile: profile})
	ma.AttachTelemetry(tel)

	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- ma.Run(prog.Entry(), maxInsts) }()

	topOpt := telemetry.TopOptions{Rows: rows}
	if !once {
		tick := time.NewTicker(interval)
		defer tick.Stop()
	live:
		for {
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, daisy.ErrHalt) {
					return err
				}
				break live
			case <-tick.C:
				fmt.Fprint(os.Stderr, "\x1b[2J\x1b[H"+telemetry.RenderTop(tel.Snapshot(), time.Since(start), topOpt))
			}
		}
	} else if err := <-done; err != nil && !errors.Is(err, daisy.ErrHalt) {
		return err
	}

	ma.SyncTelemetry()
	fmt.Print(telemetry.RenderTop(tel.Snapshot(), time.Since(start), topOpt))
	if prof := tel.Profile(); prof != nil {
		fmt.Print(prof.RenderTop(rows))
	}
	return nil
}
