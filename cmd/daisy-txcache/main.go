// daisy-txcache maintains a persistent translation-cache directory (the
// store behind MachineOptions.Cache). The cache is crash-safe by design —
// a running machine treats every damaged or oversized entry as a counted
// miss — so none of these commands is ever required for correctness; they
// exist to inspect a directory, reclaim space, and clean up the debris
// (torn writes, orphaned temp files, foreign-version entries) that
// crashes and translator upgrades leave behind.
//
// Usage:
//
//	daisy-txcache stat -dir DIR                 # entry count, bytes, health summary
//	daisy-txcache fsck -dir DIR [-repair]       # validate every entry; -repair deletes bad ones
//	daisy-txcache gc   -dir DIR -max-bytes N    # evict least-recently-used entries past N bytes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"daisy/internal/txcache"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stat":
		err = runStat(args)
	case "fsck":
		err = runFsck(args)
	case "gc":
		err = runGC(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "daisy-txcache: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daisy-txcache:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  daisy-txcache stat -dir DIR                # entry count, bytes, health summary
  daisy-txcache fsck -dir DIR [-repair]      # validate every entry against the Load path
  daisy-txcache gc   -dir DIR -max-bytes N   # evict least-recently-used entries past N bytes`)
}

// open validates and opens the cache directory. Unlike a machine run —
// which must shrug off a missing or unwritable directory — a maintenance
// tool pointed at a directory that does not exist should say so, not
// create an empty cache and report it healthy.
func open(dir string) (*txcache.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("%s: not a directory", dir)
	}
	return txcache.Open(dir)
}

func runStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	fs.Parse(args)
	if _, err := open(*dir); err != nil {
		return err
	}
	ents, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	var entries, tmp, other int
	var bytes int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".dtx":
			entries++
			bytes += info.Size()
		case ".tmp":
			tmp++
		default:
			other++
		}
	}
	fmt.Printf("%s: %d entries, %d bytes\n", *dir, entries, bytes)
	if tmp > 0 {
		fmt.Printf("  %d orphaned .tmp file(s) from interrupted writes (fsck -repair removes them)\n", tmp)
	}
	if other > 0 {
		fmt.Printf("  %d unrelated file(s) (ignored by the cache)\n", other)
	}
	return nil
}

func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	repair := fs.Bool("repair", false, "delete invalid entries and orphaned temp files")
	fs.Parse(args)
	s, err := open(*dir)
	if err != nil {
		return err
	}
	rep := s.Fsck(*repair)
	fmt.Println(rep)
	if rep.Bad() && !*repair {
		return fmt.Errorf("store has invalid entries (rerun with -repair to delete them)")
	}
	return nil
}

func runGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	maxBytes := fs.Int64("max-bytes", -1, "shrink the store to at most this many payload bytes")
	fs.Parse(args)
	if *maxBytes < 0 {
		return fmt.Errorf("-max-bytes is required")
	}
	s, err := open(*dir)
	if err != nil {
		return err
	}
	removed, freed, err := s.GC(*maxBytes)
	if err != nil {
		return err
	}
	fmt.Printf("%s: removed %d entries, freed %d bytes\n", *dir, removed, freed)
	return nil
}
