// daisy-txcache maintains a persistent translation-cache directory (the
// store behind MachineOptions.Cache). The cache is crash-safe by design —
// a running machine treats every damaged or oversized entry as a counted
// miss — so none of these commands is ever required for correctness; they
// exist to inspect a directory, reclaim space, and clean up the debris
// (torn writes, orphaned temp files, foreign-version entries) that
// crashes and translator upgrades leave behind.
//
// Usage:
//
//	daisy-txcache stat -dir DIR [-deep]         # entry count, compression, health summary
//	daisy-txcache fsck -dir DIR [-repair]       # validate every entry; -repair deletes bad ones
//	daisy-txcache gc   -dir DIR -max-bytes N    # evict least-recently-used entries past N bytes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"daisy/internal/txcache"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stat":
		err = runStat(args)
	case "fsck":
		err = runFsck(args)
	case "gc":
		err = runGC(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "daisy-txcache: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daisy-txcache:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  daisy-txcache stat -dir DIR [-deep]        # entry count, compression, health; -deep adds per-tier service
  daisy-txcache fsck -dir DIR [-repair]      # validate every entry against the Load path
  daisy-txcache gc   -dir DIR -max-bytes N   # evict least-recently-used entries past N bytes`)
}

// open validates and opens the cache directory. Unlike a machine run —
// which must shrug off a missing or unwritable directory — a maintenance
// tool pointed at a directory that does not exist should say so, not
// create an empty cache and report it healthy.
func open(dir string) (*txcache.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	info, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("%s: not a directory", dir)
	}
	return txcache.Open(dir)
}

func runStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	deep := fs.Bool("deep", false, "load every entry to measure per-tier service (decodes the whole store)")
	fs.Parse(args)
	s, err := open(*dir)
	if err != nil {
		return err
	}
	ents, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	var tmp, other int
	for _, e := range ents {
		switch filepath.Ext(e.Name()) {
		case ".dtx", "":
		case ".tmp":
			tmp++
		default:
			other++
		}
	}
	u := s.Usage()
	fmt.Printf("%s: %d entries, %d bytes on disk\n", *dir, u.Entries, u.PayloadSize)
	fmt.Printf("  bodies: %d raw -> %d stored bytes (ratio %.2fx, %d/%d entries compressed)\n",
		u.RawSize, u.StoredSize, u.Ratio(), u.Compressed, u.Entries)
	if u.Short > 0 {
		fmt.Printf("  %d entry(ies) too short to carry a header (fsck -repair removes them)\n", u.Short)
	}
	if tmp > 0 {
		fmt.Printf("  %d orphaned .tmp file(s) from interrupted writes (fsck -repair removes them)\n", tmp)
	}
	if other > 0 {
		fmt.Printf("  %d unrelated file(s) (ignored by the cache)\n", other)
	}
	if *deep {
		// Load the whole store twice: the first pass decodes from disk and
		// promotes into the in-memory hot tier, the second shows what the
		// tier then absorbs — the per-tier split a warm fleet machine sees.
		for pass := 0; pass < 2; pass++ {
			for _, e := range ents {
				if k, ok := txcache.ParseName(e.Name()); ok {
					s.Load(k)
				}
			}
		}
		st := s.Stats()
		hotN, hotBytes := s.HotTier()
		fmt.Printf("  deep: hot tier holds %d entries, %d decoded bytes (bound permitting)\n", hotN, hotBytes)
		fmt.Printf("  deep: %d loads: %d hot / %d disk; served %d bytes hot, %d disk; %d decodes\n",
			st.Hits, st.HotHits, st.Hits-st.HotHits,
			st.BytesServedHot, st.BytesServedDisk, st.Decodes)
		if st.Misses > 0 {
			fmt.Printf("  deep: %d misses (%d absent, %d corrupt, %d skew, %d options)\n",
				st.Misses, st.Absent, st.Corrupt, st.VersionSkew, st.OptionsMismatch)
		}
	}
	return nil
}

func runFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	repair := fs.Bool("repair", false, "delete invalid entries and orphaned temp files")
	fs.Parse(args)
	s, err := open(*dir)
	if err != nil {
		return err
	}
	rep := s.Fsck(*repair)
	fmt.Println(rep)
	if rep.Bad() && !*repair {
		return fmt.Errorf("store has invalid entries (rerun with -repair to delete them)")
	}
	return nil
}

func runGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory")
	maxBytes := fs.Int64("max-bytes", -1, "shrink the store to at most this many payload bytes")
	fs.Parse(args)
	if *maxBytes < 0 {
		return fmt.Errorf("-max-bytes is required")
	}
	s, err := open(*dir)
	if err != nil {
		return err
	}
	removed, freed, err := s.GC(*maxBytes)
	if err != nil {
		return err
	}
	fmt.Printf("%s: removed %d entries, freed %d bytes\n", *dir, removed, freed)
	return nil
}
