// daisy-profile runs a workload with the guest attribution profiler on and
// exports where guest time went, in the guest's own address space: a
// pprof-compatible payload for `go tool pprof`, a flat top-N text report,
// and an annotated side-by-side disassembly of the hottest pages (base
// instruction on the left, the VLIW parcels scheduled from it on the
// right).
//
// Usage:
//
//	daisy-profile -workload gcc -o gcc.pprof          # then: go tool pprof -top gcc.pprof
//	daisy-profile -workload c_sieve -top 15           # flat report on stdout
//	daisy-profile -workload wc -annotate 2            # annotate the 2 hottest pages
//	daisy-profile -workload c_sieve -o p.pb -check    # validate the payload parses
//
// The default -sample of 1 attributes every dispatch, so the profile's
// cycle total matches the machine's dispatch cycle count exactly; raise it
// to trade exactness for lower overhead.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"daisy"
	"daisy/internal/telemetry"
	"daisy/internal/vliw"
)

func main() {
	var (
		wlName     = flag.String("workload", "c_sieve", "workload to run (see daisy-run -workload)")
		scale      = flag.Int("scale", 1, "workload input scale")
		configName = flag.String("config", "24-16-8-7", "machine configuration")
		sample     = flag.Int("sample", 1, "attribute 1 in N dispatches (1 = exact)")
		maxInsts   = flag.Uint64("max", 0, "instruction budget (0 = unlimited)")
		async      = flag.Bool("async", false, "translate asynchronously on a worker pool")
		out        = flag.String("o", "", "write the gzipped pprof payload to FILE")
		top        = flag.Int("top", 10, "rows in the flat report (0 disables it)")
		annotate   = flag.Int("annotate", 0, "annotate the N hottest pages' disassembly")
		check      = flag.Bool("check", false, "re-read and structurally validate the -o payload")
	)
	flag.Parse()
	if err := run(*wlName, *scale, *configName, *sample, *maxInsts, *async,
		*out, *top, *annotate, *check); err != nil {
		fmt.Fprintln(os.Stderr, "daisy-profile:", err)
		os.Exit(1)
	}
}

func run(wlName string, scale int, configName string, sample int, maxInsts uint64,
	async bool, out string, top, annotate int, check bool) error {

	cfg, err := vliw.ConfigByName(configName)
	if err != nil {
		return err
	}
	w, err := daisy.WorkloadByName(wlName)
	if err != nil {
		return err
	}
	prog, err := w.Build()
	if err != nil {
		return err
	}

	m := daisy.NewMemory(8 << 20)
	if err := prog.Load(m); err != nil {
		return err
	}
	opt := daisy.DefaultOptions()
	opt.Trans.Config = cfg
	opt.AsyncTranslate = async
	ma, err := daisy.NewMachine(m, &daisy.Env{In: w.Input(scale)}, opt)
	if err != nil {
		return err
	}
	defer ma.Close()

	tel := daisy.NewTelemetry(daisy.TelemetryOptions{SampleEvery: sample, Profile: true})
	ma.AttachTelemetry(tel)

	if err := ma.Run(prog.Entry(), maxInsts); err != nil && !errors.Is(err, daisy.ErrHalt) {
		return err
	}
	ma.SyncTelemetry()

	prof := tel.Profile()
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := prof.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[daisy-profile] wrote %s (inspect with: go tool pprof -top %s)\n", out, out)
	}
	if top > 0 {
		fmt.Print(prof.RenderTop(top))
	}
	for i, ps := range prof.Pages() {
		if i >= annotate {
			break
		}
		fmt.Print(ma.AnnotatedDisassembly(prof, ps.Base))
	}
	if check {
		if out == "" {
			return fmt.Errorf("-check requires -o")
		}
		f, err := os.Open(out)
		if err != nil {
			return err
		}
		defer f.Close()
		sum, err := telemetry.ValidatePprof(f)
		if err != nil {
			return fmt.Errorf("pprof payload invalid: %w", err)
		}
		fmt.Fprintf(os.Stderr, "[daisy-profile] payload ok: %s\n", sum)
	}
	return nil
}
