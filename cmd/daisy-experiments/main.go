// daisy-experiments regenerates every table and figure of the paper's
// evaluation on this reproduction's workloads and prints them in the
// paper's layout. EXPERIMENTS.md archives one run of this program.
//
// Usage:
//
//	daisy-experiments              # everything, default scale
//	daisy-experiments -scale 3     # bigger inputs
//	daisy-experiments -only t51,t53,f52
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daisy/cmd/internal/obs"
	"daisy/internal/experiments"
)

func main() {
	var (
		scale = flag.Int("scale", 2, "benchmark input scale")
		only  = flag.String("only", "", "comma-separated experiment ids (t51..t59, f51..f55, cost, oracle, ablate, pipeline, aot)")
	)
	ob := obs.Register()
	flag.Parse()
	// The runner builds its machines internally, so only the profiling
	// half of the observability flags applies here (-cpuprofile /
	// -memprofile); attach telemetry to a single run with daisy-run or
	// watch one live with daisy-top.
	_, finish, err := ob.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "daisy-experiments:", err)
		os.Exit(1)
	}
	runErr := run(*scale, *only)
	if ferr := finish(); ferr != nil && runErr == nil {
		runErr = ferr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "daisy-experiments:", runErr)
		os.Exit(1)
	}
}

func run(scale int, only string) error {
	r := experiments.NewRunner(scale)
	sel := map[string]bool{}
	for _, s := range strings.Split(only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[s] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	// Full-suite runs warm the runner's memo cache across all cores
	// first; table generation then replays the cached measurements in
	// order, so the output is bit-identical to a serial run.
	if len(sel) == 0 {
		if err := r.MeasureAll(experiments.SuiteRequests()); err != nil {
			return err
		}
	}

	for _, e := range experiments.Experiments() {
		if !want(e.ID) {
			continue
		}
		t, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("[%s]\n%s\n", e.ID, t)
	}
	return nil
}
