// daisy-experiments regenerates every table and figure of the paper's
// evaluation on this reproduction's workloads and prints them in the
// paper's layout. EXPERIMENTS.md archives one run of this program.
//
// Usage:
//
//	daisy-experiments              # everything, default scale
//	daisy-experiments -scale 3     # bigger inputs
//	daisy-experiments -only t51,t53,f52
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daisy/cmd/internal/obs"
	"daisy/internal/experiments"
	"daisy/internal/stats"
)

func main() {
	var (
		scale = flag.Int("scale", 2, "benchmark input scale")
		only  = flag.String("only", "", "comma-separated experiment ids (t51..t59, f51..f55, cost, oracle, ablate, pipeline, aot)")
	)
	ob := obs.Register()
	flag.Parse()
	// The runner builds its machines internally, so only the profiling
	// half of the observability flags applies here (-cpuprofile /
	// -memprofile); attach telemetry to a single run with daisy-run or
	// watch one live with daisy-top.
	_, finish, err := ob.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "daisy-experiments:", err)
		os.Exit(1)
	}
	runErr := run(*scale, *only)
	if ferr := finish(); ferr != nil && runErr == nil {
		runErr = ferr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "daisy-experiments:", runErr)
		os.Exit(1)
	}
}

func run(scale int, only string) error {
	r := experiments.NewRunner(scale)
	sel := map[string]bool{}
	for _, s := range strings.Split(only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[s] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	// Full-suite runs warm the runner's memo cache across all cores
	// first; table generation then replays the cached measurements in
	// order, so the output is bit-identical to a serial run.
	if len(sel) == 0 {
		if err := r.MeasureAll(experiments.SuiteRequests()); err != nil {
			return err
		}
	}

	type exp struct {
		id string
		fn func() (*stats.Table, error)
	}
	exps := []exp{
		{"t51", r.Table51},
		{"f51", r.Figure51},
		{"t52", r.Table52},
		{"t53", r.Table53},
		{"t54", r.Table54},
		{"f52", r.Figure52},
		{"t55", r.Table55},
		{"t56", r.Table56},
		{"t57", r.Table57},
		{"f53", r.Figure53},
		{"f54", r.Figure54},
		{"f55", r.Figure55},
		{"t58", func() (*stats.Table, error) { return r.Table58(), nil }},
		{"t59", r.Table59},
		{"cost", r.TranslationCost},
		{"oracle", r.OracleTable},
		{"trace", r.InterpretiveTable},
		{"ablate", func() (*stats.Table, error) { return r.Ablations("c_sieve") }},
		{"pipeline", r.PipelineTable},
		{"aot", r.AotTable},
		{"tier2", r.Tier2Table},
	}
	for _, e := range exps {
		if !want(e.id) {
			continue
		}
		t, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("[%s]\n%s\n", e.id, t)
	}
	return nil
}
