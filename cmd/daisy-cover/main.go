// daisy-cover is the CI coverage ratchet. It parses one or more Go cover
// profiles (as written by `go test -coverprofile`), computes total statement
// coverage, and compares it against the committed baseline:
//
//	go test -coverprofile=cover.out ./...
//	go run ./cmd/daisy-cover -profile cover.out -check    # CI: fail on drop
//	go run ./cmd/daisy-cover -profile cover.out -update   # ratchet forward
//
// -check fails when coverage falls more than the tolerance (default 0.5
// points) below the baseline, so coverage can drift down only in sub-half-
// percent steps and only until the next -update raises the floor again.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

const defaultBaseline = "COVERAGE.txt"

func main() {
	profile := flag.String("profile", "cover.out", "cover profile written by go test -coverprofile")
	baseline := flag.String("baseline", defaultBaseline, "committed baseline file")
	check := flag.Bool("check", false, "fail if coverage dropped more than -tolerance below baseline")
	update := flag.Bool("update", false, "rewrite the baseline with the measured coverage")
	tolerance := flag.Float64("tolerance", 0.5, "allowed drop in coverage points before -check fails")
	flag.Parse()

	got, covered, total, err := readProfile(*profile)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("coverage: %.2f%% of statements (%d/%d)\n", got, covered, total)

	if *update {
		body := fmt.Sprintf("%.2f\n", got)
		if err := os.WriteFile(*baseline, []byte(body), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline %s updated to %.2f%%\n", *baseline, got)
		return
	}
	if !*check {
		return
	}
	want, err := readBaseline(*baseline)
	if err != nil {
		fatal(fmt.Errorf("%v (run with -update to create the baseline)", err))
	}
	if got < want-*tolerance {
		fatal(fmt.Errorf("coverage ratchet: %.2f%% is more than %.2f points below baseline %.2f%%",
			got, *tolerance, want))
	}
	fmt.Printf("ratchet ok: baseline %.2f%%, tolerance %.2f points\n", want, *tolerance)
	if got > want {
		fmt.Printf("coverage rose; consider `make cover-update` to raise the floor\n")
	}
}

// readProfile totals statement coverage over a cover profile. Blocks that
// appear multiple times (merged profiles) count once, as covered if any
// occurrence ran.
func readProfile(path string) (pct float64, covered, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()

	type block struct {
		stmts int64
		hit   bool
	}
	blocks := make(map[string]*block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:sl.sc,el.ec numstmt count
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		count, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%s: bad count in %q", path, line)
		}
		rest := line[:sp]
		sp = strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			return 0, 0, 0, fmt.Errorf("%s: malformed line %q", path, line)
		}
		stmts, err := strconv.ParseInt(rest[sp+1:], 10, 64)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%s: bad stmt count in %q", path, line)
		}
		pos := rest[:sp]
		b := blocks[pos]
		if b == nil {
			b = &block{stmts: stmts}
			blocks[pos] = b
		}
		if count > 0 {
			b.hit = true
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, 0, err
	}
	for _, b := range blocks {
		total += b.stmts
		if b.hit {
			covered += b.stmts
		}
	}
	if total == 0 {
		return 0, 0, 0, fmt.Errorf("%s: no coverage blocks found", path)
	}
	return 100 * float64(covered) / float64(total), covered, total, nil
}

func readBaseline(path string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(b)), 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", path, err)
	}
	return v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-cover:", err)
	os.Exit(1)
}
