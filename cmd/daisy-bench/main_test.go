package main

import "testing"

func TestParseLine(t *testing.T) {
	name, iters, metrics, ok := parseLine(
		"BenchmarkExecutorThroughput-8   3   1234567 ns/op   2.50 insts/VLIW   788 allocs/op")
	if !ok || name != "BenchmarkExecutorThroughput" || iters != 3 {
		t.Fatalf("parse: %q %d %v", name, iters, ok)
	}
	if metrics["ns/op"] != 1234567 || metrics["insts/VLIW"] != 2.5 || metrics["allocs/op"] != 788 {
		t.Fatalf("metrics: %v", metrics)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \tdaisy/internal/vmm\t1.2s",
		"BenchmarkNoMetrics-8 5",
		"--- BENCH: BenchmarkX",
	} {
		if _, _, _, ok := parseLine(bad); ok {
			t.Errorf("parsed non-result line %q", bad)
		}
	}
	// No -GOMAXPROCS suffix (GOMAXPROCS=1 output keeps the bare name).
	if n, _, _, ok := parseLine("BenchmarkBare 10 5 ns/op"); !ok || n != "BenchmarkBare" {
		t.Fatalf("bare name: %q %v", n, ok)
	}
}

func TestAllSingle(t *testing.T) {
	if !allSingle(map[string][]float64{"ns/op": {1}}) {
		t.Fatal("single sample should be droppable")
	}
	if allSingle(map[string][]float64{"ns/op": {1, 2}, "allocs/op": {3}}) {
		t.Fatal("multi-sample must be retained")
	}
	if !allSingle(nil) {
		t.Fatal("empty is single")
	}
}
