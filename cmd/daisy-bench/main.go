// daisy-bench parses `go test -bench` output into a stable JSON form and
// diffs two such files, seeding the repository's performance trajectory:
// every `make bench` writes a dated BENCH_<date>.json snapshot and
// `make benchcmp A=old B=new` reports the deltas.
//
// Since schema 1 a snapshot carries a provenance manifest (git SHA, go
// version, CPU model, GOMAXPROCS, benchtime, count) and, when the suite
// ran with -count N, the full per-metric sample distributions alongside
// the min summary — the raw material daisy-trend's significance test
// needs. Both -diff and daisy-trend still accept the original headerless
// []Result files, so the committed history stays readable forever.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -count=4 -benchmem | daisy-bench -json -benchtime=1x -count=4
//	daisy-bench -diff BENCH_2026-08-01.json BENCH_2026-08-05.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"daisy/internal/perfwall"
)

func main() {
	var (
		asJSON    = flag.Bool("json", false, "parse benchmark output on stdin to a schema-1 snapshot on stdout")
		diff      = flag.Bool("diff", false, "diff two BENCH_*.json files (args: old new)")
		benchtime = flag.String("benchtime", "", "benchtime the suite ran with, recorded in the manifest")
		count     = flag.Int("count", 1, "count the suite ran with, recorded in the manifest")
	)
	flag.Parse()
	switch {
	case *asJSON:
		if err := parseToJSON(*benchtime, *count); err != nil {
			fatal(err)
		}
	case *diff:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two files, got %d", flag.NArg()))
		}
		if err := diffFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-bench:", err)
	os.Exit(1)
}

// parseToJSON reads `go test -bench` output and emits a schema-1
// snapshot, echoing the raw input to stderr so a piped `make bench`
// still shows the live benchmark progress. Repeated lines for the same
// benchmark (-count N) fold into one Result: the summary metrics keep
// the per-metric minimum, Iters sums across runs, and the raw values
// are retained in capture order under Samples.
func parseToJSON(benchtime string, count int) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	byName := map[string]*perfwall.Result{}
	var order []string
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		name, iters, metrics, ok := parseLine(line)
		if !ok {
			continue
		}
		r := byName[name]
		if r == nil {
			r = &perfwall.Result{Name: name,
				Metrics: map[string]float64{},
				Samples: map[string][]float64{}}
			byName[name] = r
			order = append(order, name)
		}
		r.Iters += iters
		for m, v := range metrics {
			if old, seen := r.Metrics[m]; !seen || v < old {
				r.Metrics[m] = v
			}
			r.Samples[m] = append(r.Samples[m], v)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	m := perfwall.CollectManifest("daisy-bench")
	m.BenchTime = benchtime
	m.Count = count
	snap := &perfwall.Snapshot{Manifest: m}
	for _, name := range order {
		r := *byName[name]
		// A single run per benchmark carries no distribution worth
		// storing; drop the redundant one-element sample arrays.
		if allSingle(r.Samples) {
			r.Samples = nil
		}
		snap.Results = append(snap.Results, r)
	}
	b, err := snap.Encode()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

func allSingle(samples map[string][]float64) bool {
	for _, vs := range samples {
		if len(vs) > 1 {
			return false
		}
	}
	return true
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   1   123456 ns/op   3.14 some-metric   456 B/op   7 allocs/op
func parseLine(line string) (name string, iters int64, metrics map[string]float64, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, nil, false
	}
	name = f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", 0, nil, false
	}
	metrics = map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", 0, nil, false
		}
		metrics[f[i+1]] = v
	}
	return name, iters, metrics, len(metrics) > 0
}

// diffFiles prints, for every benchmark and metric present in both files,
// old, new and the percent change (negative is an improvement for cost
// metrics like ns/op and allocs/op). Accepts both snapshot forms.
func diffFiles(oldPath, newPath string) error {
	oldS, err := perfwall.ReadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newS, err := perfwall.ReadSnapshot(newPath)
	if err != nil {
		return err
	}
	var names []string
	for _, r := range oldS.Results {
		if newS.Result(r.Name) != nil {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-44s %-16s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta%")
	for _, n := range names {
		o, nw := oldS.Result(n), newS.Result(n)
		var metrics []string
		for m := range o.Metrics {
			if _, ok := nw.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov, nv := o.Metrics[m], nw.Metrics[m]
			var delta string
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			} else if nv == 0 {
				delta = "0.0%"
			} else {
				delta = "new"
			}
			fmt.Printf("%-44s %-16s %14.4g %14.4g %9s\n", n, m, ov, nv, delta)
		}
	}
	return nil
}
