// daisy-bench parses `go test -bench` output into a stable JSON form and
// diffs two such files, seeding the repository's performance trajectory:
// every `make bench` writes a dated BENCH_<date>.json snapshot and
// `make benchcmp A=old B=new` reports the deltas.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem | daisy-bench -json
//	daisy-bench -diff BENCH_2026-08-01.json BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line: the standard ns/op, B/op and
// allocs/op plus every custom metric attached with b.ReportMetric.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var (
		asJSON = flag.Bool("json", false, "parse benchmark output on stdin to JSON on stdout")
		diff   = flag.Bool("diff", false, "diff two BENCH_*.json files (args: old new)")
	)
	flag.Parse()
	switch {
	case *asJSON:
		if err := parseToJSON(); err != nil {
			fatal(err)
		}
	case *diff:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two files, got %d", flag.NArg()))
		}
		if err := diffFiles(flag.Arg(0), flag.Arg(1)); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-bench:", err)
	os.Exit(1)
}

// parseToJSON reads `go test -bench` output and emits a sorted JSON array,
// echoing the raw input to stderr so a piped `make bench` still shows the
// live benchmark progress.
func parseToJSON() error {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   1   123456 ns/op   3.14 some-metric   456 B/op   7 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

func load(path string) (map[string]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

// diffFiles prints, for every benchmark and metric present in both files,
// old, new and the percent change (negative is an improvement for cost
// metrics like ns/op and allocs/op).
func diffFiles(oldPath, newPath string) error {
	oldR, err := load(oldPath)
	if err != nil {
		return err
	}
	newR, err := load(newPath)
	if err != nil {
		return err
	}
	var names []string
	for n := range oldR {
		if _, ok := newR[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-44s %-16s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta%")
	for _, n := range names {
		o, nw := oldR[n], newR[n]
		var metrics []string
		for m := range o.Metrics {
			if _, ok := nw.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov, nv := o.Metrics[m], nw.Metrics[m]
			var delta string
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			} else if nv == 0 {
				delta = "0.0%"
			} else {
				delta = "new"
			}
			fmt.Printf("%-44s %-16s %14.4g %14.4g %9s\n", n, m, ov, nv, delta)
		}
	}
	return nil
}
