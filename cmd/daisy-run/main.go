// daisy-run executes a base-architecture program under the DAISY machine
// (or the reference interpreter) and prints execution statistics.
//
// Usage:
//
//	daisy-run [flags] prog.s          # assemble and run a source file
//	daisy-run [flags] -workload wc    # run a built-in benchmark
//
// With -precompile (and -txcache DIR), the whole binary is pre-translated
// into the persistent cache on a parallel worker pool and nothing is
// executed — the fleet warm-up pass.
//
// Flags select the machine configuration, translation page size, input,
// and whether to cross-check against the interpreter.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"

	"daisy"
	"daisy/cmd/internal/obs"
	"daisy/internal/vliw"
)

func main() {
	var (
		configName = flag.String("config", "24-16-8-7", "machine configuration (see -list-configs)")
		listCfg    = flag.Bool("list-configs", false, "list machine configurations and exit")
		pageSize   = flag.Uint("pagesize", 4096, "translation page size in bytes")
		wl         = flag.String("workload", "", "run a built-in benchmark instead of a file")
		scale      = flag.Int("scale", 1, "benchmark input scale")
		inputFile  = flag.String("input", "", "file providing the program's input stream")
		useInterp  = flag.Bool("interp", false, "run on the reference interpreter instead")
		check      = flag.Bool("check", false, "run both engines and compare outputs")
		dump       = flag.Bool("dump", false, "dump the entry group's tree VLIWs before running")
		memMB      = flag.Uint("mem", 8, "physical memory size in MiB")
		maxInsts   = flag.Uint64("max", 0, "instruction budget (0 = unlimited)")
		async      = flag.Bool("async", false, "translate asynchronously on a worker pool (hot pages only)")
		cacheDir   = flag.String("txcache", "", "persistent translation cache directory (created if missing)")
		precompile = flag.Bool("precompile", false, "pre-translate the whole binary into -txcache, then exit without running")
		tier2      = flag.Bool("tier2", false, "retranslate hot stable pages at tier-2 (optimizing) effort")
		tier2Thr   = flag.Int("tier2-threshold", 0, "dispatches before a page is tier-2 eligible (0: default 8)")
		tier2Stab  = flag.Uint64("tier2-stability", 0, "instructions a page must stay unmodified before tier-2 (0: default)")
	)
	ob := obs.Register()
	flag.Parse()

	if *listCfg {
		for _, c := range daisy.Configs {
			fmt.Printf("%s\t(issue %d, ALU %d, mem %d, branch %d)\n",
				c.Name, c.Issue, c.ALU, c.Mem, c.Branch)
		}
		return
	}
	t2 := tier2Opts{on: *tier2, threshold: *tier2Thr, stability: *tier2Stab}
	if err := run(*configName, uint32(*pageSize), *wl, *scale, *inputFile,
		*useInterp, *check, *dump, uint32(*memMB)<<20, *maxInsts, *async, *cacheDir, *precompile, t2, ob, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "daisy-run:", err)
		os.Exit(1)
	}
}

// tier2Opts carries the optimizing-retranslation knobs from the flag set.
type tier2Opts struct {
	on        bool
	threshold int
	stability uint64
}

func run(configName string, pageSize uint32, wl string, scale int, inputFile string,
	useInterp, check, dump bool, memSize uint32, maxInsts uint64,
	async bool, cacheDir string, precompile bool, t2 tier2Opts, ob *obs.Flags, args []string) error {

	cfg, err := vliw.ConfigByName(configName)
	if err != nil {
		return err
	}

	var prog *daisy.Program
	var input []byte
	switch {
	case wl != "":
		w, err := daisy.WorkloadByName(wl)
		if err != nil {
			return err
		}
		if prog, err = w.Build(); err != nil {
			return err
		}
		input = w.Input(scale)
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		if prog, err = daisy.Assemble(string(src)); err != nil {
			return err
		}
	default:
		return errors.New("need a source file or -workload NAME")
	}
	if inputFile != "" {
		if input, err = os.ReadFile(inputFile); err != nil {
			return err
		}
	}

	opt := daisy.DefaultOptions()
	opt.Trans.Config = cfg
	opt.Trans.PageSize = pageSize
	opt.AsyncTranslate = async
	opt.Tier2 = t2.on
	opt.Tier2Threshold = t2.threshold
	opt.Tier2Stability = t2.stability
	if cacheDir != "" {
		cache, err := daisy.OpenTranslationCache(cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = cache
	}

	if dump {
		m := daisy.NewMemory(memSize)
		if err := prog.Load(m); err != nil {
			return err
		}
		g, err := daisy.Translate(m, opt.Trans, prog.Entry())
		if err != nil {
			return err
		}
		fmt.Print(g.Dump())
	}

	if precompile {
		if opt.Cache == nil {
			return errors.New("-precompile needs -txcache DIR (the pass has no sink without one)")
		}
		m := daisy.NewMemory(memSize)
		if err := prog.Load(m); err != nil {
			return err
		}
		ma, err := daisy.NewMachine(m, &daisy.Env{}, opt)
		if err != nil {
			return err
		}
		defer ma.Close()
		rep, err := daisy.Precompile(ma, prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[daisy] %v (%s)\n", rep, opt.Cache.Dir())
		return nil
	}

	var interpOut []byte
	var interpInsts uint64
	if useInterp || check {
		m := daisy.NewMemory(memSize)
		if err := prog.Load(m); err != nil {
			return err
		}
		env := &daisy.Env{In: input}
		ip := daisy.NewInterpreter(m, env, prog.Entry())
		if err := ip.Run(maxInsts); !errors.Is(err, daisy.ErrHalt) {
			return fmt.Errorf("interpreter: %w", err)
		}
		interpOut, interpInsts = env.Out, ip.InstCount
		if useInterp {
			os.Stdout.Write(env.Out)
			fmt.Fprintf(os.Stderr, "[interp] %d instructions\n", ip.InstCount)
			return nil
		}
	}

	m := daisy.NewMemory(memSize)
	if err := prog.Load(m); err != nil {
		return err
	}
	env := &daisy.Env{In: input}
	ma, err := daisy.NewMachine(m, env, opt)
	if err != nil {
		return err
	}
	defer ma.Close()
	tel, finish, err := ob.Setup()
	if err != nil {
		return err
	}
	if tel != nil {
		ma.AttachTelemetry(tel)
	}
	runErr := ma.Run(prog.Entry(), maxInsts)
	ma.SyncTelemetry()
	if ferr := finish(); ferr != nil && runErr == nil {
		runErr = ferr
	}
	if runErr != nil {
		return runErr
	}
	os.Stdout.Write(env.Out)

	s := &ma.Stats
	fmt.Fprintf(os.Stderr, "[daisy] %d base instructions in %d VLIWs (ILP %.2f)\n",
		s.BaseInsts(), s.Exec.VLIWs, s.InfILP())
	fmt.Fprintf(os.Stderr, "[daisy] pages %d, groups %d, interp insts %d, aliases %d, cross-page %d/%d/%d (direct/lr/ctr)\n",
		s.PagesBuilt, s.GroupsBuilt, s.InterpInsts, s.Exec.Aliases,
		s.CrossDirect, s.CrossLR, s.CrossCTR)
	if async {
		fmt.Fprintf(os.Stderr, "[daisy] async: enqueued %d, published %d, pushed back %d, stale dropped %d\n",
			s.AsyncEnqueues, s.AsyncPublishes, s.AsyncQueueFull, s.StaleTranslationsDropped)
	}
	if t2.on {
		fmt.Fprintf(os.Stderr, "[daisy] tier2: promoted %d, dispatches %d, deopts %d, demoted %d\n",
			s.Tier2Promotions, s.Tier2Dispatches, s.Tier2Deopts, s.Tier2Demotions)
	}
	if opt.Cache != nil {
		fmt.Fprintf(os.Stderr, "[daisy] txcache: hits %d (%d hot), misses %d, stores %d (%s)\n",
			s.CacheHits, s.CacheHotHits, s.CacheMisses, s.CacheStores, opt.Cache.Dir())
	}

	if check {
		if !bytes.Equal(interpOut, env.Out) {
			return errors.New("output differs from the interpreter")
		}
		if interpInsts != s.BaseInsts() {
			return fmt.Errorf("instruction counts differ: interp %d, daisy %d",
				interpInsts, s.BaseInsts())
		}
		fmt.Fprintln(os.Stderr, "[check] identical output and instruction counts")
	}
	return nil
}
