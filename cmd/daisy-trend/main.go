// daisy-trend turns the repository's committed BENCH_*.json history into
// a perf-trend wall and a CI regression gate.
//
//	daisy-trend wall                  # every BENCH_*.json, one markdown table
//	daisy-trend wall -plots trend/    # plus one SVG sparkline per metric
//	daisy-trend check OLD NEW         # gate: exit 1 on significant regression
//
// `wall` aligns every benchmark/metric pair across the history (snapshots
// are sorted chronologically, with _pre variants before their date group)
// and renders the full per-metric trend table. `check` compares two
// snapshots benchstat-style — min-of-N summaries, Mann-Whitney rank-sum
// significance when both sides retained samples — and gates on the pinned
// key metrics (see -keys). Wall-clock metrics only gate between snapshots
// from the same host (manifest CPU/GOOS/GOARCH match); deterministic
// counters gate everywhere. An intentional regression is acknowledged
// with -ack "Benchmark/metric", which records the trade-off in the CI
// invocation instead of silently raising thresholds.
//
// Both commands accept the original headerless []Result files and the
// schema-1 manifest-bearing form interchangeably.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"daisy/internal/perfwall"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "wall":
		err = wallCmd(os.Args[2:])
	case "check":
		err = checkCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "daisy-trend: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "daisy-trend:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  daisy-trend wall [-dir D] [-plots DIR] [files...]   render the trend wall
  daisy-trend check [flags] OLD.json NEW.json         gate on regressions

check flags:
  -keys  comma-separated Benchmark/metric pairs (default: the pinned headline metrics)
  -ack   comma-separated Benchmark/metric pairs whose regressions are intentional
  -all   also print every non-gated benchmark/metric delta
`)
}

func wallCmd(args []string) error {
	fs := flag.NewFlagSet("wall", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to glob BENCH_*.json from when no files are given")
	plots := fs.String("plots", "", "also write one SVG sparkline per series into DIR")
	markdown := fs.Bool("md", true, "render markdown (false: aligned text)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
		if err != nil {
			return err
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json files found")
	}
	perfwall.SortHistoryPaths(paths)
	files, err := perfwall.LoadHistory(paths)
	if err != nil {
		return err
	}
	t := perfwall.WallTable(files)
	if *markdown {
		fmt.Print(t.Markdown())
	} else {
		fmt.Print(t)
	}
	if *plots != "" {
		if err := writePlots(*plots, files); err != nil {
			return err
		}
	}
	return nil
}

func writePlots(dir string, files []perfwall.HistoryFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	labels := make([]string, len(files))
	for i, f := range files {
		labels[i] = f.Label
	}
	n := 0
	for _, s := range perfwall.AlignHistory(files) {
		svg := perfwall.Sparkline(s.Key.String(), labels, s.Values, 640, 180)
		name := sanitize(s.Key.Bench+"_"+s.Key.Metric) + ".svg"
		if err := os.WriteFile(filepath.Join(dir, name), svg, 0o644); err != nil {
			return err
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "[daisy-trend] %d sparklines in %s\n", n, dir)
	return nil
}

func checkCmd(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	keysFlag := fs.String("keys", "", "comma-separated Benchmark/metric pairs to gate on")
	ackFlag := fs.String("ack", "", "comma-separated Benchmark/metric pairs whose regressions are intentional")
	all := fs.Bool("all", false, "also print every non-gated delta")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("check needs exactly two files, got %d", fs.NArg())
	}
	oldS, err := perfwall.ReadSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	newS, err := perfwall.ReadSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}

	var keys []perfwall.Key
	for _, s := range splitList(*keysFlag) {
		k, err := parseKey(s)
		if err != nil {
			return err
		}
		keys = append(keys, k)
	}
	acked := splitList(*ackFlag)
	for _, a := range acked {
		if _, err := parseKey(a); err != nil {
			return err
		}
	}

	results, failed := perfwall.Check(oldS, newS, keys, acked, perfwall.CompareOptions{})
	fmt.Printf("%s -> %s\n", fs.Arg(0), fs.Arg(1))
	if !perfwall.SameHost(oldS.Manifest, newS.Manifest) {
		fmt.Println("(different or unknown hosts: wall-clock metrics are informational only)")
	}
	for _, res := range results {
		switch {
		case res.Delta == nil:
			fmt.Printf("  skip  %-55s (absent)\n", res.Key)
		case res.Acked:
			fmt.Printf("  ACKED %s\n", res.Delta)
		case res.Delta.Regression:
			fmt.Printf("  FAIL  %s\n", res.Delta)
		default:
			fmt.Printf("  ok    %s\n", res.Delta)
		}
	}
	if *all {
		gated := map[string]bool{}
		for _, res := range results {
			gated[res.Key.String()] = true
		}
		deltas := perfwall.CompareSnapshots(oldS, newS, perfwall.CompareOptions{})
		sort.Slice(deltas, func(i, j int) bool {
			if deltas[i].Bench != deltas[j].Bench {
				return deltas[i].Bench < deltas[j].Bench
			}
			return deltas[i].Metric < deltas[j].Metric
		})
		fmt.Println("  --")
		for _, d := range deltas {
			if gated[d.Bench+"/"+d.Metric] {
				continue
			}
			fmt.Printf("  info  %s\n", d)
		}
	}
	if failed {
		return fmt.Errorf("significant regression on gated metrics (acknowledge an intentional one with -ack \"Benchmark/metric\")")
	}
	fmt.Println("trend gate: ok")
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseKey(s string) (perfwall.Key, error) {
	i := strings.Index(s, "/")
	if i <= 0 || i == len(s)-1 {
		return perfwall.Key{}, fmt.Errorf("bad key %q (want Benchmark/metric, e.g. BenchmarkExecutorThroughput/ns/op)", s)
	}
	return perfwall.Key{Bench: s[:i], Metric: s[i+1:]}, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
