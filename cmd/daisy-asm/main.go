// daisy-asm assembles base-architecture source to a flat binary image, or
// disassembles a binary back to mnemonics.
//
// Usage:
//
//	daisy-asm prog.s -o prog.bin     # assemble (image starts at the first chunk)
//	daisy-asm -d prog.bin -org 0x10000
//	daisy-asm -l prog.s              # listing: address, word, mnemonic
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"daisy"
	"daisy/internal/asm"
	"daisy/internal/ppc"
)

func main() {
	var (
		out     = flag.String("o", "", "output file for the flat image (default: stdout summary)")
		disasm  = flag.Bool("d", false, "disassemble a binary instead")
		org     = flag.Uint("org", 0, "load address for -d")
		listing = flag.Bool("l", false, "print an assembly listing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: daisy-asm [flags] FILE")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *out, *disasm, uint32(*org), *listing); err != nil {
		fmt.Fprintln(os.Stderr, "daisy-asm:", err)
		os.Exit(1)
	}
}

func run(file, out string, disasm bool, org uint32, listing bool) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	if disasm {
		for i := 0; i+4 <= len(data); i += 4 {
			w := binary.BigEndian.Uint32(data[i:])
			fmt.Printf("%08x: %08x  %s\n", org+uint32(i), w, ppc.Decode(w))
		}
		return nil
	}

	prog, err := daisy.Assemble(string(data))
	if err != nil {
		return err
	}
	if listing {
		printListing(prog)
	}
	if out != "" {
		return writeImage(prog, out)
	}
	if !listing {
		for _, c := range prog.Chunks {
			fmt.Printf("chunk at %#x: %d bytes\n", c.Addr, len(c.Data))
		}
		fmt.Printf("entry %#x\n", prog.Entry())
	}
	return nil
}

func printListing(prog *asm.Program) {
	for _, c := range prog.Chunks {
		for i := 0; i+4 <= len(c.Data); i += 4 {
			w := binary.BigEndian.Uint32(c.Data[i:])
			fmt.Printf("%08x: %08x  %s\n", c.Addr+uint32(i), w, ppc.Decode(w))
		}
	}
}

func writeImage(prog *asm.Program, out string) error {
	if len(prog.Chunks) == 0 {
		return fmt.Errorf("nothing assembled")
	}
	base := prog.Chunks[0].Addr
	img := make([]byte, prog.End()-base)
	for _, c := range prog.Chunks {
		copy(img[c.Addr-base:], c.Data)
	}
	return os.WriteFile(out, img, 0o644)
}
