GO ?= go
DATE := $(shell date +%Y-%m-%d)

.PHONY: all build test vet race race-hot race-async chaos-smoke chaos-soak tier2-soak aot-soak bench-smoke profile-smoke cover cover-update ci bench benchcmp experiments

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The hot-path packages under the race detector: the parallel experiment
# runner and the chaos harness are the two places goroutines touch shared
# machinery, so they get an explicit -race pass in CI.
race-hot:
	$(GO) test -race ./internal/chaos/... ./internal/experiments/...

# The asynchronous-translation gates: the soak that runs every workload
# with the worker pool on (under -race, it checks the machine/worker
# seam), the staleness/backpressure tests, and the persistent-cache
# round-trip and damage-fallback tests.
race-async:
	$(GO) test -race ./internal/vmm -run 'TestAsync|TestWarmCache|TestCache'
	$(GO) test -race ./internal/txcache

# Short deterministic chaos pass: every workload under every injector,
# fixed seeds, so CI failures are replayable with the printed triple.
chaos-smoke:
	$(GO) run ./cmd/daisy-chaos -seed 1 -seeds 2

# Crash-safety soak: the full seeded injector matrix — including the
# worker-panic/hang/overflow/stale-publish and cache-I/O injectors —
# under the race detector. Every injected fault must surface as a
# counted degradation with zero divergences; any failure is replayable
# from the printed (workload, injector, seed) triple.
chaos-soak:
	$(GO) run -race ./cmd/daisy-chaos -seed 1 -seeds 4

# Compile and exercise the perf-path benchmarks once so a regression that
# breaks them is caught in CI, not at the next perf investigation. The
# pattern matches both the bare executor and the telemetry-attached variant.
bench-smoke:
	$(GO) test -run='^$$' -bench=ExecutorThroughput -benchtime=1x .

# End-to-end profiler gate: run a workload with every dispatch attributed,
# export the pprof payload, and structurally validate it round-trips.
profile-smoke:
	$(GO) run ./cmd/daisy-profile -workload c_sieve -o /tmp/daisy-profile-smoke.pb -top 5 -check

# Tier-2 soak: the optimizing-retranslation gates under the race detector —
# the deopt/quarantine policy tests, the deferred-commit reconstruction
# wall (the FuzzTier2Lockstep seed corpus replays as unit cases), and the
# tier-2 golden equivalence + determinism suite. Byte-identical output
# against the tier-1 goldens is the bar.
tier2-soak:
	$(GO) test -race ./internal/vmm -run 'TestTier2|FuzzTier2Lockstep'
	$(GO) test -race ./internal/golden -run 'Tier2'

# AOT soak: whole-binary pre-translation equivalence under the race
# detector — precompile-then-run must be byte-identical to a synchronous
# cold machine on every golden workload, stay that way while injectors
# rewrite guest code (smc-storm) or damage the cache (cache-bitflip,
# cache-skew), and the two-tier store must survive concurrent shared use.
aot-soak:
	$(GO) test -race ./internal/vmm -run 'TestPrecompile'
	$(GO) test -race ./internal/chaos -run 'TestPrecompileUnderChaos'
	$(GO) test -race ./internal/txcache -run 'TestHotTier|TestConcurrentSharedStore|TestSingleFlight'

# Coverage ratchet: total statement coverage may not fall more than 0.5
# points below the committed COVERAGE.txt baseline. Raise the floor after
# adding tests with `make cover-update`.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/daisy-cover -profile cover.out -check

cover-update:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/daisy-cover -profile cover.out -update
	@echo "commit COVERAGE.txt to ratchet the floor"

ci: vet build race race-hot race-async chaos-smoke chaos-soak tier2-soak aot-soak bench-smoke profile-smoke cover

# Run the full benchmark suite once and archive the parsed metrics as a
# dated JSON snapshot — the repository's perf trajectory. Compare two
# snapshots with `make benchcmp A=BENCH_old.json B=BENCH_new.json`.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/daisy-bench -json > BENCH_$(DATE).json
	@echo "wrote BENCH_$(DATE).json"

benchcmp:
	$(GO) run ./cmd/daisy-bench -diff $(A) $(B)

experiments:
	$(GO) run ./cmd/daisy-experiments
