GO ?= go

.PHONY: all build test vet race chaos-smoke ci bench experiments

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short deterministic chaos pass: every workload under every injector,
# fixed seeds, so CI failures are replayable with the printed triple.
chaos-smoke:
	$(GO) run ./cmd/daisy-chaos -seed 1 -seeds 2

ci: vet build race chaos-smoke

bench:
	$(GO) test -bench=. -benchtime=1x

experiments:
	$(GO) run ./cmd/daisy-experiments
