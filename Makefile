GO ?= go
DATE := $(shell date +%Y-%m-%d)

# Samples per benchmark in `make bench`. With 4+ samples per side,
# daisy-trend's rank-sum test replaces the wide single-sample thresholds.
BENCH_COUNT ?= 4

.PHONY: all build test vet race race-hot race-async chaos-smoke chaos-soak tier2-soak aot-soak bench-smoke profile-smoke cover cover-update ci bench benchcmp experiments paper paper-smoke trend trend-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The hot-path packages under the race detector: the parallel experiment
# runner and the chaos harness are the two places goroutines touch shared
# machinery, so they get an explicit -race pass in CI.
race-hot:
	$(GO) test -race ./internal/chaos/... ./internal/experiments/...

# The asynchronous-translation gates: the soak that runs every workload
# with the worker pool on (under -race, it checks the machine/worker
# seam), the staleness/backpressure tests, and the persistent-cache
# round-trip and damage-fallback tests.
race-async:
	$(GO) test -race ./internal/vmm -run 'TestAsync|TestWarmCache|TestCache'
	$(GO) test -race ./internal/txcache

# Short deterministic chaos pass: every workload under every injector,
# fixed seeds, so CI failures are replayable with the printed triple.
chaos-smoke:
	$(GO) run ./cmd/daisy-chaos -seed 1 -seeds 2

# Crash-safety soak: the full seeded injector matrix — including the
# worker-panic/hang/overflow/stale-publish and cache-I/O injectors —
# under the race detector. Every injected fault must surface as a
# counted degradation with zero divergences; any failure is replayable
# from the printed (workload, injector, seed) triple.
chaos-soak:
	$(GO) run -race ./cmd/daisy-chaos -seed 1 -seeds 4

# Compile and exercise the perf-path benchmarks once so a regression that
# breaks them is caught in CI, not at the next perf investigation. The
# pattern matches both the bare executor and the telemetry-attached variant.
bench-smoke:
	$(GO) test -run='^$$' -bench=ExecutorThroughput -benchtime=1x .

# End-to-end profiler gate: run a workload with every dispatch attributed,
# export the pprof payload, and structurally validate it round-trips.
profile-smoke:
	$(GO) run ./cmd/daisy-profile -workload c_sieve -o /tmp/daisy-profile-smoke.pb -top 5 -check

# Tier-2 soak: the optimizing-retranslation gates under the race detector —
# the deopt/quarantine policy tests, the deferred-commit reconstruction
# wall (the FuzzTier2Lockstep seed corpus replays as unit cases), and the
# tier-2 golden equivalence + determinism suite. Byte-identical output
# against the tier-1 goldens is the bar.
tier2-soak:
	$(GO) test -race ./internal/vmm -run 'TestTier2|FuzzTier2Lockstep'
	$(GO) test -race ./internal/golden -run 'Tier2'

# AOT soak: whole-binary pre-translation equivalence under the race
# detector — precompile-then-run must be byte-identical to a synchronous
# cold machine on every golden workload, stay that way while injectors
# rewrite guest code (smc-storm) or damage the cache (cache-bitflip,
# cache-skew), and the two-tier store must survive concurrent shared use.
aot-soak:
	$(GO) test -race ./internal/vmm -run 'TestPrecompile'
	$(GO) test -race ./internal/chaos -run 'TestPrecompileUnderChaos'
	$(GO) test -race ./internal/txcache -run 'TestHotTier|TestConcurrentSharedStore|TestSingleFlight'

# Coverage ratchet: total statement coverage may not fall more than 0.5
# points below the committed COVERAGE.txt baseline. Raise the floor after
# adding tests with `make cover-update`.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/daisy-cover -profile cover.out -check

cover-update:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/daisy-cover -profile cover.out -update
	@echo "commit COVERAGE.txt to ratchet the floor"

ci: vet build race race-hot race-async chaos-smoke chaos-soak tier2-soak aot-soak bench-smoke profile-smoke paper-smoke trend-check cover

# Run the full benchmark suite BENCH_COUNT times and archive the parsed
# metrics as a dated JSON snapshot — the repository's perf trajectory.
# The snapshot carries a provenance manifest and the raw per-benchmark
# sample distributions; compare two snapshots with
# `make benchcmp A=BENCH_old.json B=BENCH_new.json` or gate with
# `go run ./cmd/daisy-trend check OLD NEW`.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=$(BENCH_COUNT) -benchmem . | \
		$(GO) run ./cmd/daisy-bench -json -benchtime=1x -count=$(BENCH_COUNT) > BENCH_$(DATE).json
	@echo "wrote BENCH_$(DATE).json"

benchcmp:
	$(GO) run ./cmd/daisy-bench -diff $(A) $(B)

experiments:
	$(GO) run ./cmd/daisy-experiments

# One-command paper reproduction: the full experiment grid, chaos matrix,
# profiler smoke and output cross-check into a timestamped runs/<stamp>/
# folder. See EXPERIMENTS.md "Reproduce the paper".
paper:
	$(GO) run ./cmd/daisy-paper -plot

# CI gate: a scale-1 grid with trimmed rep counts into a throwaway
# folder. daisy-paper exits nonzero if any experiment fails, any output
# digest mismatches the reference interpreter or the goldens, the chaos
# matrix diverges, or the finished folder fails integrity validation.
paper-smoke:
	$(GO) run ./cmd/daisy-paper -reps 2 -fleet-reps 1 -machines 2 -chaos-seeds 1 \
		-out $${TMPDIR:-/tmp}/daisy-paper-smoke -name ci

# Render the perf-trend wall over every committed BENCH_*.json snapshot.
trend:
	$(GO) run ./cmd/daisy-trend wall

# CI gate: benchmark the working tree (2 samples per benchmark, enough
# for honest min-of-N) and gate the pinned headline metrics against the
# newest committed snapshot. Wall-clock metrics only gate when both
# snapshots come from the same host; deterministic metrics (allocs/op,
# cycles/inst) gate everywhere. Acknowledge an intentional regression by
# re-running with ACK="Benchmark/metric" (see EXPERIMENTS.md).
trend-check:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -count=2 -benchmem . | \
		$(GO) run ./cmd/daisy-bench -json -benchtime=1x -count=2 > $${TMPDIR:-/tmp}/daisy-trend-now.json
	$(GO) run ./cmd/daisy-trend check $(if $(ACK),-ack "$(ACK)") \
		$(lastword $(sort $(wildcard BENCH_*.json))) $${TMPDIR:-/tmp}/daisy-trend-now.json
