package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSelfmodExample(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("example failed: %v", err)
	}
	for _, want := range []string{
		"r31 = 116",
		"code-modification invalidations serviced by the VMM:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
