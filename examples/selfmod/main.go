// Selfmod demonstrates §3.2: self-modifying code runs transparently under
// DAISY. The program patches the immediate field of one of its own
// instructions in a loop; the store into the protected (translated) page
// rolls the VLIW back, the VMM re-executes it interpretively, invalidates
// the stale translation, and retranslates — invisible to the program.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"daisy"
)

const src = `
_start:	li r31, 0
	li r30, 8          # patch-and-run 8 times
again:	lis r5, patch@ha
	addi r5, r5, patch@l
	lwz r6, 0(r5)      # fetch the addi instruction word
	addi r6, r6, 1     # bump its immediate field
	stw r6, 0(r5)      # self-modify!
patch:	addi r31, r31, 10  # immediate grows 11, 12, 13, ...
	subi r30, r30, 1
	cmpwi r30, 0
	bgt again
	li r0, 0
	sc
`

func run(w io.Writer) error {
	prog, err := daisy.Assemble(src)
	if err != nil {
		return err
	}
	m := daisy.NewMemory(1 << 20)
	if err := prog.Load(m); err != nil {
		return err
	}
	ma, err := daisy.NewMachine(m, &daisy.Env{}, daisy.DefaultOptions())
	if err != nil {
		return err
	}
	if err := ma.Run(prog.Entry(), 0); err != nil {
		return err
	}
	// 11+12+...+18 = 116
	fmt.Fprintf(w, "r31 = %d (expected 116: the machine executed each freshly patched instruction)\n",
		ma.St.GPR[31])
	fmt.Fprintf(w, "code-modification invalidations serviced by the VMM: %d\n",
		ma.Stats.SMCInvalidations)
	fmt.Fprintf(w, "pages (re)translated: %d, instructions interpreted during recovery: %d\n",
		ma.Stats.PagesBuilt, ma.Stats.InterpInsts)
	if ma.St.GPR[31] != 116 {
		return fmt.Errorf("unexpected result: r31 = %d", ma.St.GPR[31])
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
