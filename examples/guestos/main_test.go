package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestGuestosExample(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("example failed: %v", err)
	}
	for _, want := range []string{
		"checksum r14 = 82000 (expected 82000)",
		"page faults serviced by the guest kernel: 40 (expected 40)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
