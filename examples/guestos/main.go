// Guestos demonstrates the paper's central compatibility claim: DAISY runs
// "all existing software for an old architecture (including operating
// system kernel code)" unchanged. A miniature operating system installs a
// data-storage-interrupt handler at the architected vector 0x300, points
// SDR1 at a page table, and enables data relocation with an rfi
// trampoline. The program then touches unmapped virtual pages; every fault
// is delivered by the VMM exactly as PowerPC hardware would (§3.3), the
// handler — itself running as translated VLIW code — maps a frame, and
// rfi restarts the faulting instruction.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"daisy"
	"daisy/internal/vmm"
)

const miniOS = `
	.equ PT, 0x7000
	.equ ALLOC, 0x6ffc
	.equ NFAULT, 0x6ff8

	.org 0x300             # architected DSI vector: the "kernel"
handler:
	mfspr r20, 19          # DAR
	srwi r21, r20, 12
	slwi r21, r21, 2
	li r22, PT
	li r23, ALLOC
	lwz r24, 0(r23)
	addi r25, r24, 0x1000
	stw r25, 0(r23)
	ori r24, r24, 1
	stwx r24, r22, r21     # page table entry: frame | valid
	li r23, NFAULT
	lwz r24, 0(r23)
	addi r24, r24, 1
	stw r24, 0(r23)
	rfi                    # restart the faulting instruction

	.org 0x10000           # "user" program
_start:	li r3, ALLOC
	lis r4, 0x10           # frames from 1MB
	stw r4, 0(r3)
	li r3, NFAULT
	li r4, 0
	stw r4, 0(r3)
	li r3, PT
	mtspr 25, r3           # SDR1
	li r5, 0
	li r6, 4096
	mtctr r6
	mr r7, r3
clr:	stw r5, 0(r7)
	addi r7, r7, 4
	bdnz clr
	lis r3, virt@ha
	addi r3, r3, virt@l
	mtspr 26, r3
	li r4, 0x10            # MSR[DR]
	mtspr 27, r4
	rfi                    # enter relocated mode
virt:	lis r10, 0x40          # virtual 4MB region, nothing mapped
	li r11, 40
	mtctr r11
	li r12, 0
	li r14, 0
loop:	addi r12, r12, 100
	stw r12, 0(r10)        # page faults on first touch
	lwz r13, 0(r10)
	add r14, r14, r13
	addi r10, r10, 0x1000
	bdnz loop
	li r0, 0
	sc
`

func run(w io.Writer) error {
	prog, err := daisy.Assemble(miniOS)
	if err != nil {
		return err
	}
	m := daisy.NewMemory(8 << 20)
	if err := prog.Load(m); err != nil {
		return err
	}
	opt := daisy.DefaultOptions()
	opt.GuestFaultVectors = true
	ma, err := vmm.NewMachine(m, &daisy.Env{}, opt)
	if err != nil {
		return err
	}
	if err := ma.Run(prog.Entry(), 0); err != nil {
		return err
	}

	faults, _ := m.Read32(0x6ff8)
	want := uint32(0)
	for i := uint32(1); i <= 40; i++ {
		want += 100 * i
	}
	fmt.Fprintf(w, "checksum r14 = %d (expected %d)\n", ma.St.GPR[14], want)
	fmt.Fprintf(w, "page faults serviced by the guest kernel: %d (expected 40)\n", faults)
	fmt.Fprintf(w, "VMM exceptions recovered: %d, instructions interpreted during delivery: %d\n",
		ma.Stats.Exceptions, ma.Stats.InterpInsts)
	fmt.Fprintln(w, "\nThe kernel at vector 0x300, the rfi trampolines and the user loop all")
	fmt.Fprintln(w, "ran as dynamically translated tree-VLIW code — no OS modifications.")
	if ma.St.GPR[14] != want || faults != 40 {
		return fmt.Errorf("unexpected result: r14=%d faults=%d", ma.St.GPR[14], faults)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
