// Exceptions demonstrates DAISY's software-only precise exceptions (§2,
// §3.3, §3.5). A data page fault is injected under a load buried in a hot,
// speculatively-reordered loop. When the fault finally fires:
//
//   - the faulting tree VLIW rolls back to its entry (a precise
//     base-instruction boundary),
//   - the §3.5 forward scan over the executed VLIW path recovers the exact
//     base-architecture instruction responsible,
//   - the VMM re-executes interpretively to the fault and fills SRR0/DAR
//     exactly as PowerPC hardware would (§3.3).
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"daisy"
	"daisy/internal/mem"
	"daisy/internal/vliw"
)

const src = `
_start:	lis r5, 0x8        # r5 = 0x80000 (fault will be injected here)
	li r3, 0
	li r4, 100
	mtctr r4
loop:	addi r3, r3, 1
	mullw r6, r3, r3
	cmpwi r3, 42
	bne skip
	lwz r9, 0(r5)      # reached only on iteration 42 — faults
	add r10, r9, r9
skip:	stw r6, 4(r5)
	bdnz loop
	li r0, 0
	sc
`

func run(w io.Writer) error {
	prog, err := daisy.Assemble(src)
	if err != nil {
		return err
	}

	// Reference: where does real (interpreted) hardware fault?
	m1 := daisy.NewMemory(1 << 20)
	_ = prog.Load(m1)
	m1.InjectFault(0x80000, false)
	ip := daisy.NewInterpreter(m1, &daisy.Env{}, prog.Entry())
	errI := ip.Run(0)
	var f1 *mem.Fault
	if !errors.As(errI, &f1) {
		return fmt.Errorf("interpreter did not fault: %v", errI)
	}
	fmt.Fprintf(w, "interpreter faults at pc=%#x (addr %#x) after %d instructions; r3=%d\n",
		ip.St.PC, f1.Addr, ip.InstCount, ip.St.GPR[3])

	// DAISY: same program, heavily reordered VLIW code.
	m2 := daisy.NewMemory(1 << 20)
	_ = prog.Load(m2)
	m2.InjectFault(0x80000, false)
	ma, err := daisy.NewMachine(m2, &daisy.Env{}, daisy.DefaultOptions())
	if err != nil {
		return err
	}
	ma.OnFault = func(fv *vliw.Fault, scanPC uint32) {
		groupPC, _ := ma.ScanFaultFromGroupEntry(fv)
		fmt.Fprintf(w, "VMM: VLIW%d rolled back to boundary %#x; §3.5 scan -> %#x (per-VLIW) / %#x (group-entry walk)\n",
			fv.VLIW.ID, fv.Resume, scanPC, groupPC)
	}
	errV := ma.Run(prog.Entry(), 0)
	var f2 *mem.Fault
	if !errors.As(errV, &f2) {
		return fmt.Errorf("vmm did not fault: %v", errV)
	}
	fmt.Fprintf(w, "DAISY faults at pc=%#x (addr %#x) after %d instructions; r3=%d\n",
		ma.St.PC, f2.Addr, ma.Stats.BaseInsts(), ma.St.GPR[3])
	fmt.Fprintf(w, "exception delivery (§3.3): SRR0=%#x DAR=%#x DSISR=%#x\n",
		ma.St.SRR0, ma.St.DAR, ma.St.DSISR)

	if ip.St.PC != ma.St.PC || ip.InstCount != ma.Stats.BaseInsts() ||
		ip.St.GPR[3] != ma.St.GPR[3] {
		return errors.New("MISMATCH — precision violated")
	}
	fmt.Fprintln(w, "precise: identical fault point, instruction count and architected state.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
