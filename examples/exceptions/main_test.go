package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExceptionsExample(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("example failed: %v", err)
	}
	for _, want := range []string{
		"interpreter faults at pc=",
		"DAISY faults at pc=",
		"precise: identical fault point, instruction count and architected state.",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
