// Oracle demonstrates Chapter 6: how far DAISY's real-time scheduling sits
// from oracle parallelism, and how resource-bounded oracle points bridge
// the gap. The oracle schedules the complete dynamic trace with perfect
// branch knowledge, unlimited rename registers and only true dependences —
// the paper's "interpretive compilation" ceiling.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"daisy"
	"daisy/internal/mem"
	"daisy/internal/oracle"
	"daisy/internal/vmm"
)

func run(w io.Writer) error {
	wl, err := daisy.WorkloadByName("c_sieve")
	if err != nil {
		return err
	}
	prog, err := wl.Build()
	if err != nil {
		return err
	}
	input := wl.Input(1)
	const memSize = 8 << 20

	// DAISY's dynamic-compilation ILP on the 24-issue machine.
	m := mem.New(memSize)
	if err := prog.Load(m); err != nil {
		return err
	}
	ma, err := vmm.NewMachine(m, &daisy.Env{In: input}, vmm.DefaultOptions())
	if err != nil {
		return err
	}
	if err := ma.Run(prog.Entry(), 0); err != nil {
		return err
	}
	fmt.Fprintf(w, "c_sieve under DAISY (24-issue):     ILP %5.2f\n", ma.Stats.InfILP())

	// Resource-bounded oracle points on the way up (Chapter 6's
	// "practical intermediate points").
	for _, ops := range []int{4, 8, 16, 24, 64} {
		r, err := oracle.Measure(prog, input, oracle.Limits{OpsPerCycle: ops}, memSize)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "oracle bounded to %2d ops/cycle:     ILP %5.2f\n", ops, r.ILP)
	}

	// The unconstrained oracle.
	r, err := oracle.Measure(prog, input, oracle.Limits{}, memSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "oracle (unlimited resources):       ILP %5.2f over %d instructions\n",
		r.ILP, r.Insts)
	fmt.Fprintln(w, "\nThe gap between the first and last line is what Chapter 6's")
	fmt.Fprintln(w, "interpretive compilation proposes to close: schedule the executed")
	fmt.Fprintln(w, "trace instead of all statically reachable paths.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
