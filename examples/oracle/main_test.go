package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestOracleExample(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle schedule of the full dynamic trace is slow; skipped in -short")
	}
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("example failed: %v", err)
	}
	for _, want := range []string{
		"c_sieve under DAISY (24-issue):",
		"oracle bounded to  4 ops/cycle:",
		"oracle (unlimited resources):",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
