package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartExample(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("example failed: %v", err)
	}
	for _, want := range []string{
		"=== Figure 2.2 fragment as tree VLIWs ===",
		"=== DAISY vs interpreter on a 500-iteration loop ===",
		"identical architected results.",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
