// Quickstart: translate the paper's own Figure 2.2 code fragment to tree
// VLIW instructions, dump them, and run a small program under both the
// DAISY machine and the reference interpreter to show bit-identical
// architected results.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"daisy"
)

// figure22 is the 11-instruction PowerPC fragment of Figure 2.2. OFFPAGE
// targets land on the next 4K page.
const figure22 = `
	.org 0x1000
_start:	add   r1, r2, r3
	bc    12, 2, L1      # bc L1 (taken when cr0.eq)
	slwi  r12, r1, 3     # sli r12,r1,3
	xor   r4, r5, r6
	and   r8, r4, r7
	bc    12, 6, L2      # bc L2 (taken when cr1.eq)
	b     0x2000         # b OFFPAGE
L1:	subf  r9, r11, r10   # sub r9,r10,r11
	b     0x2004         # b OFFPAGE
L2:	cntlzw r11, r4
	b     0x2008         # b OFFPAGE
`

const demo = `
_start:	li r3, 0
	li r4, 500
	mtctr r4
loop:	addi r3, r3, 3
	andi. r5, r3, 4
	beq skip
	addi r6, r6, 1
skip:	bdnz loop
	li r0, 0
	sc
`

func run(w io.Writer) error {
	// Part 1: the Figure 2.2 fragment, translated and dumped.
	prog, err := daisy.Assemble(figure22)
	if err != nil {
		return err
	}
	m := daisy.NewMemory(1 << 20)
	if err := prog.Load(m); err != nil {
		return err
	}
	g, err := daisy.Translate(m, daisy.DefaultTranslatorOptions(), prog.Entry())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "=== Figure 2.2 fragment as tree VLIWs ===")
	fmt.Fprint(w, g.Dump())

	// Part 2: run a loop under both engines.
	p, err := daisy.Assemble(demo)
	if err != nil {
		return err
	}
	mm := daisy.NewMemory(1 << 20)
	if err := p.Load(mm); err != nil {
		return err
	}
	ma, err := daisy.NewMachine(mm, &daisy.Env{}, daisy.DefaultOptions())
	if err != nil {
		return err
	}
	if err := ma.Run(p.Entry(), 0); err != nil {
		return err
	}
	st, insts, ilp := &ma.St, ma.Stats.BaseInsts(), ma.Stats.InfILP()

	p2, _ := daisy.Assemble(demo)
	m2 := daisy.NewMemory(1 << 20)
	_ = p2.Load(m2)
	ip := daisy.NewInterpreter(m2, &daisy.Env{}, p2.Entry())
	if err := ip.Run(0); !errors.Is(err, daisy.ErrHalt) {
		return err
	}

	fmt.Fprintln(w, "\n=== DAISY vs interpreter on a 500-iteration loop ===")
	fmt.Fprintf(w, "daisy:  r3=%d r6=%d, %d instructions, ILP %.2f\n",
		st.GPR[3], st.GPR[6], insts, ilp)
	fmt.Fprintf(w, "interp: r3=%d r6=%d, %d instructions\n",
		ip.St.GPR[3], ip.St.GPR[6], ip.InstCount)
	if st.GPR[3] != ip.St.GPR[3] || st.GPR[6] != ip.St.GPR[6] || insts != ip.InstCount {
		return errors.New("MISMATCH — this should never happen")
	}
	fmt.Fprintln(w, "identical architected results.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
